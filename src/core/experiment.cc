#include "core/experiment.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/dispatch.h"
#include "core/lane.h"
#include "fleet/auth.h"
#include "fleet/lane.h"
#include "net/cluster.h"
#include "net/frame.h"
#include "recov/journal.h"
#include "recov/resume.h"

namespace rbx {

namespace {

[[noreturn]] void usage_error(const char* prog, const char* arg,
                              const char* why) {
  std::fprintf(stderr, "%s: bad argument '%s' (%s)\n", prog, arg, why);
  std::fprintf(stderr,
               "usage: %s [--samples=N] [--streams=K] [--nmax=N] [--seed=N]\n"
               "          [--threads=N] [--workers=N]\n"
               "          [--connect=HOST:PORT,... | --fleet=HOST:PORT\n"
               "           [--fleet-workers=N]] [--auth-key-file=PATH]\n"
               "          [--batch=N] [--steal]\n"
               "          [--handshake-timeout-ms=N]\n"
               "          [--shard=i/k [--shard-out=FILE | --shard-serve=PORT]]\n"
               "          [--merge=SRC1,SRC2,...]  (SRC: file or HOST:PORT)\n"
               "          [--journal=FILE | --resume=FILE] [--no-cache]\n"
               "(--threads, --workers and --connect compose into one hybrid "
               "sweep)\n",
               prog);
  std::exit(2);
}

// "--shard=i/k": both parts strict non-negative integers, k >= 1, i < k.
bool parse_shard(const char* text, ShardSpec* out, const char** why) {
  const char* slash = std::strchr(text, '/');
  if (slash == nullptr) {
    *why = "expected i/k (e.g. --shard=0/4)";
    return false;
  }
  const std::string index_text(text, static_cast<std::size_t>(slash - text));
  std::uint64_t index = 0;
  std::uint64_t count = 0;
  if (index_text.empty() || !parse_strict_u64(index_text.c_str(), &index) ||
      !parse_strict_u64(slash + 1, &count)) {
    *why = "expected i/k with non-negative integers";
    return false;
  }
  if (count == 0) {
    *why = "shard count must be >= 1";
    return false;
  }
  if (index >= count) {
    *why = "shard index must be < shard count";
    return false;
  }
  out->index = static_cast<std::size_t>(index);
  out->count = static_cast<std::size_t>(count);
  return true;
}

}  // namespace

// strtoull itself skips leading whitespace and negates '-' values into
// huge uint64s, so insist the text starts with a digit.
bool parse_strict_u64(const char* text, std::uint64_t* out) {
  if (!std::isdigit(static_cast<unsigned char>(text[0]))) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

ExperimentOptions ExperimentOptions::parse(int argc, char** argv,
                                           std::size_t default_samples,
                                           std::size_t default_nmax) {
  ExperimentOptions opts;
  opts.samples = default_samples;
  opts.nmax = default_nmax;
  const char* prog = argc > 0 ? argv[0] : "bench";
  bool shard_given = false;
  bool shard_out_given = false;
  bool batch_given = false;
  bool handshake_timeout_given = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    std::uint64_t* target = nullptr;
    std::uint64_t parsed = 0;
    std::size_t* size_target = nullptr;
    if (std::strncmp(arg, "--samples=", 10) == 0) {
      value = arg + 10;
      size_target = &opts.samples;
    } else if (std::strncmp(arg, "--streams=", 10) == 0) {
      value = arg + 10;
      size_target = &opts.streams;
    } else if (std::strncmp(arg, "--nmax=", 7) == 0) {
      value = arg + 7;
      size_target = &opts.nmax;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      value = arg + 7;
      target = &opts.seed;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      value = arg + 10;
      size_target = &opts.threads;
      opts.threads_given = true;
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      value = arg + 10;
      size_target = &opts.workers;
    } else if (std::strncmp(arg, "--batch=", 8) == 0) {
      value = arg + 8;
      size_target = &opts.batch;
      batch_given = true;
    } else if (std::strncmp(arg, "--connect=", 10) == 0) {
      const char* list = arg + 10;
      while (*list != '\0') {
        const char* comma = std::strchr(list, ',');
        const std::size_t len = comma != nullptr
                                    ? static_cast<std::size_t>(comma - list)
                                    : std::strlen(list);
        if (len == 0) {
          usage_error(prog, arg, "empty endpoint in list");
        }
        net::Endpoint endpoint;
        std::string why;
        if (!net::parse_endpoint(std::string(list, len), &endpoint, &why)) {
          usage_error(prog, arg, why.c_str());
        }
        opts.connect.push_back(std::move(endpoint));
        list += len;
        if (*list == ',') {
          ++list;
          if (*list == '\0') {
            usage_error(prog, arg, "empty endpoint in list");
          }
        }
      }
      if (opts.connect.empty()) {
        usage_error(prog, arg, "expected a comma-separated host:port list");
      }
      continue;
    } else if (std::strncmp(arg, "--fleet=", 8) == 0) {
      std::string why;
      if (!net::parse_endpoint(arg + 8, &opts.fleet, &why)) {
        usage_error(prog, arg, why.c_str());
      }
      opts.fleet_given = true;
      continue;
    } else if (std::strncmp(arg, "--fleet-workers=", 16) == 0) {
      std::uint64_t n = 0;
      if (!parse_strict_u64(arg + 16, &n) || n == 0) {
        usage_error(prog, arg, "expected a positive worker count");
      }
      opts.fleet_workers = static_cast<std::size_t>(n);
      continue;
    } else if (std::strncmp(arg, "--auth-key-file=", 16) == 0) {
      if (arg[16] == '\0') {
        usage_error(prog, arg, "expected a key file path");
      }
      opts.auth_key_file = arg + 16;
      continue;
    } else if (std::strcmp(arg, "--steal") == 0) {
      opts.steal = true;
      continue;
    } else if (std::strncmp(arg, "--handshake-timeout-ms=", 23) == 0) {
      // Capped at INT_MAX: the value feeds poll()'s int timeout, and a
      // silently overflowed negative deadline would demote every worker.
      std::uint64_t ms = 0;
      if (!parse_strict_u64(arg + 23, &ms) || ms == 0 ||
          ms > 2147483647ull) {
        usage_error(prog, arg,
                    "expected a positive millisecond count (at most "
                    "2147483647)");
      }
      opts.handshake_timeout_ms = static_cast<std::size_t>(ms);
      handshake_timeout_given = true;
      continue;
    } else if (std::strncmp(arg, "--shard=", 8) == 0) {
      const char* why = nullptr;
      if (!parse_shard(arg + 8, &opts.shard, &why)) {
        usage_error(prog, arg, why);
      }
      shard_given = true;
      continue;
    } else if (std::strncmp(arg, "--shard-out=", 12) == 0) {
      if (arg[12] == '\0') {
        usage_error(prog, arg, "expected a file path");
      }
      opts.shard_out = arg + 12;
      shard_out_given = true;
      continue;
    } else if (std::strncmp(arg, "--shard-serve=", 14) == 0) {
      std::uint64_t port = 0;
      if (!parse_strict_u64(arg + 14, &port) || port > 65535) {
        usage_error(prog, arg, "expected a port in 0..65535 (0 = ephemeral)");
      }
      opts.shard_serve = true;
      opts.shard_serve_port = static_cast<std::uint16_t>(port);
      continue;
    } else if (std::strncmp(arg, "--journal=", 10) == 0) {
      if (arg[10] == '\0') {
        usage_error(prog, arg, "expected a file path");
      }
      opts.journal = arg + 10;
      continue;
    } else if (std::strncmp(arg, "--resume=", 9) == 0) {
      if (arg[9] == '\0') {
        usage_error(prog, arg, "expected a journal file path");
      }
      opts.resume = arg + 9;
      continue;
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      opts.no_cache = true;
      continue;
    } else if (std::strncmp(arg, "--merge=", 8) == 0) {
      const char* list = arg + 8;
      while (*list != '\0') {
        const char* comma = std::strchr(list, ',');
        const std::size_t len = comma != nullptr
                                    ? static_cast<std::size_t>(comma - list)
                                    : std::strlen(list);
        if (len == 0) {
          usage_error(prog, arg, "empty file name in list");
        }
        opts.merge_inputs.emplace_back(list, len);
        list += len;
        if (*list == ',') {
          ++list;
          if (*list == '\0') {
            usage_error(prog, arg, "empty file name in list");
          }
        }
      }
      if (opts.merge_inputs.empty()) {
        usage_error(prog, arg, "expected a comma-separated file list");
      }
      continue;
    } else {
      usage_error(prog, arg, "unknown flag");
    }
    if (!parse_strict_u64(value, &parsed)) {
      usage_error(prog, arg, "expected a non-negative integer");
    }
    if (size_target == &opts.threads && parsed == 0) {
      usage_error(prog, arg, "thread count must be >= 1");
    }
    if (size_target == &opts.streams && parsed == 0) {
      usage_error(prog, arg, "stream count must be >= 1");
    }
    if (size_target == &opts.workers && parsed == 0) {
      usage_error(prog, arg, "worker count must be >= 1");
    }
    if (target != nullptr) {
      *target = parsed;
    } else {
      *size_target = static_cast<std::size_t>(parsed);
    }
  }
  if (!opts.merge_inputs.empty() && shard_given) {
    usage_error(prog, "--merge", "cannot combine --merge with --shard");
  }
  if (!opts.connect.empty() && !opts.merge_inputs.empty()) {
    usage_error(prog, "--connect",
                "--merge evaluates nothing, so --connect is meaningless");
  }
  if (opts.fleet_given && !opts.connect.empty()) {
    usage_error(prog, "--fleet",
                "--fleet resolves its daemons from the registry; naming "
                "them with --connect too is contradictory - pick one");
  }
  if (opts.fleet_given && !opts.merge_inputs.empty()) {
    usage_error(prog, "--fleet",
                "--merge evaluates nothing, so --fleet is meaningless");
  }
  if (opts.fleet_workers != 0 && !opts.fleet_given) {
    usage_error(prog, "--fleet-workers",
                "--fleet-workers only applies to --fleet runs");
  }
  if (!opts.auth_key_file.empty() && opts.connect.empty() &&
      !opts.fleet_given) {
    usage_error(prog, "--auth-key-file",
                "--auth-key-file only applies to --connect or --fleet "
                "runs (only remote daemons authenticate)");
  }
  // --batch and --steal are properties of the shared dispatch core, legal
  // under any worker lane (forked or remote) and any hybrid mix of them -
  // but meaningless on a pure --threads run, where they would silently do
  // nothing (threads take single cells and cannot usefully straggle).
  const bool remote_lane = !opts.connect.empty() || opts.fleet_given;
  if (batch_given && opts.workers == 0 && !remote_lane) {
    usage_error(prog, "--batch",
                "--batch only applies to runs with a --workers, --connect "
                "or --fleet lane");
  }
  if (opts.steal && opts.workers == 0 && !remote_lane) {
    usage_error(prog, "--steal",
                "--steal only applies to runs with a --workers, --connect "
                "or --fleet lane (a pure --threads run has no stragglers "
                "worth stealing from)");
  }
  if (handshake_timeout_given && !remote_lane) {
    usage_error(prog, "--handshake-timeout-ms",
                "--handshake-timeout-ms only applies to --connect or "
                "--fleet runs");
  }
  if (!opts.journal.empty() && !opts.resume.empty()) {
    usage_error(prog, "--journal",
                "--journal starts a fresh journal and --resume continues "
                "one; pick one");
  }
  if ((!opts.journal.empty() || !opts.resume.empty()) &&
      !opts.merge_inputs.empty()) {
    usage_error(prog, "--merge",
                "--merge evaluates nothing, so there is nothing to "
                "journal or resume");
  }
  if ((!opts.journal.empty() || !opts.resume.empty()) && shard_given) {
    usage_error(prog, "--shard",
                "the sweep journal covers whole sweeps; journal the "
                "unsharded run (or re-run the lost shard - partials are "
                "cheap) instead of combining it with --shard");
  }
  if (opts.no_cache && !remote_lane) {
    usage_error(prog, "--no-cache",
                "--no-cache only applies to --connect or --fleet runs "
                "(only remote daemons keep a result cache)");
  }
  if (shard_out_given && !shard_given) {
    usage_error(prog, "--shard-out", "--shard-out requires --shard");
  }
  if (opts.shard_serve && !shard_given) {
    usage_error(prog, "--shard-serve", "--shard-serve requires --shard");
  }
  if (opts.shard_serve && shard_out_given) {
    usage_error(prog, "--shard-serve",
                "--shard-serve streams partials to a --merge peer and "
                "cannot combine with --shard-out");
  }
  opts.shard_mode = shard_given;
  if (shard_given && !opts.shard_serve && opts.shard_out.empty()) {
    opts.shard_out = "shard-" + std::to_string(opts.shard.index) + "-of-" +
                     std::to_string(opts.shard.count) + ".rbxw";
  }
  // 0 keeps the bench's default budget (documented escape hatch, and what
  // --nmax=0 has always meant).
  if (opts.samples == 0) {
    opts.samples = default_samples;
  }
  if (opts.nmax == 0) {
    opts.nmax = default_nmax;
  }
  return opts;
}

// One source of shard partials for --merge: a preloaded partial file, or
// a socket connected to a --shard-serve run that streams each section as
// the shard finishes computing it.
struct SweepRunner::MergeSource {
  std::string name;
  bool is_socket = false;
  std::vector<wire::Frame> frames;       // file mode: all sections upfront
  std::unique_ptr<net::FrameConn> conn;  // socket mode

  // The ShardPartial frame of sweep section `section`; throws wire::Error
  // naming this source when it cannot supply one.
  wire::Frame next(std::size_t section) {
    if (is_socket) {
      wire::Frame frame;
      try {
        if (!conn->recv(&frame)) {
          throw wire::Error("'" + name + "' hung up before streaming sweep "
                            "section " + std::to_string(section) +
                            " (did the shard run fail?)");
        }
      } catch (const wire::Error& e) {
        throw wire::Error("'" + name + "': " + e.what());
      }
      return frame;
    }
    if (section >= frames.size()) {
      throw wire::Error("'" + name + "' has only " +
                        std::to_string(frames.size()) +
                        " sweep sections (bench expected more - was it "
                        "written by this bench?)");
    }
    return frames[section];
  }
};

SweepRunner::SweepRunner(const ExperimentOptions& opts,
                         std::size_t default_threads)
    : opts_(opts) {
  if (opts_.threads == 0) {
    opts_.threads = default_threads;
  }
  if (!opts_.merge_inputs.empty()) {
    // Merge mode evaluates nothing, so no lanes are raised.  Sources that
    // parse as HOST:PORT are sockets to --shard-serve runs; everything
    // else is a partial file.
    for (const std::string& input : opts_.merge_inputs) {
      auto source = std::make_unique<MergeSource>();
      source->name = input;
      net::Endpoint endpoint;
      std::string why;
      if (net::parse_endpoint(input, &endpoint, &why)) {
        source->is_socket = true;
        try {
          source->conn = std::make_unique<net::FrameConn>(
              net::connect_to(endpoint, /*retries=*/10));
        } catch (const net::Error& e) {
          std::fprintf(stderr, "merge: %s\n", e.what());
          std::exit(1);
        }
      } else {
        try {
          source->frames = wire::read_frames(input);
        } catch (const wire::Error& e) {
          std::fprintf(stderr, "merge: %s\n", e.what());
          std::exit(1);
        }
      }
      merge_sources_.push_back(std::move(source));
    }
    return;
  }
  if (opts_.shard_serve) {
    try {
      shard_listener_ =
          std::make_unique<net::Listener>(opts_.shard_serve_port);
    } catch (const net::Error& e) {
      std::fprintf(stderr, "shard: %s\n", e.what());
      std::exit(1);
    }
    std::fprintf(stderr,
                 "shard: serving partials on port %u (waiting for a "
                 "--merge peer)\n",
                 static_cast<unsigned>(shard_listener_->port()));
  }
  // Compose the execution lanes.  One executor serves the whole bench
  // run: its lanes (and a TCP lane's worker connections, including the
  // knowledge of which workers died) persist across sweeps.
  // The pre-shared fleet key (--auth-key-file); an unreadable or empty
  // key file is an environment failure, reported before any lane dials.
  std::string auth_key;
  if (!opts_.auth_key_file.empty()) {
    try {
      auth_key = fleet::load_auth_key(opts_.auth_key_file);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sweep: %s\n", e.what());
      std::exit(1);
    }
  }
  std::vector<std::unique_ptr<Lane>> lanes;
  if (opts_.workers > 0) {
    // Fork lane first: raising children before the thread lane spawns
    // threads keeps each sweep's forks cheap and predictable.
    lanes.push_back(std::make_unique<ForkLane>(opts_.workers));
  }
  if (opts_.threads_given ||
      (opts_.workers == 0 && opts_.connect.empty() && !opts_.fleet_given)) {
    lanes.push_back(std::make_unique<ThreadLane>(opts_.threads));
  }
  if (!opts_.connect.empty()) {
    net::TcpLaneOptions tcp;
    tcp.endpoints = opts_.connect;
    // With local lanes present, an unreachable pool degrades the sweep
    // instead of killing it; a --connect-only run still fails loudly.
    tcp.required = lanes.empty();
    tcp.auth_key = auth_key;
    lanes.push_back(std::make_unique<net::TcpLane>(std::move(tcp)));
    remote_lanes_ = true;
  }
  if (opts_.fleet_given) {
    fleet::FleetLaneOptions flt;
    flt.registry = opts_.fleet;
    flt.auth_key = auth_key;
    flt.max_workers = static_cast<std::uint32_t>(opts_.fleet_workers);
    flt.required = lanes.empty();
    lanes.push_back(std::make_unique<fleet::FleetLane>(std::move(flt)));
    remote_lanes_ = true;
  }
  DispatchOptions dispatch;
  dispatch.batch_size = opts_.batch;
  dispatch.steal = opts_.steal;
  dispatch.handshake_timeout_ms =
      static_cast<int>(opts_.handshake_timeout_ms);
  dispatch.no_cache = opts_.no_cache;
  executor_ =
      std::make_unique<HybridExecutor>(std::move(lanes), dispatch);

  // Crash durability.  --resume runs the journal's analysis pass up front
  // (an unreadable or foreign journal is refused before any cell runs)
  // and keeps appending to the same file; --journal starts a fresh log.
  if (!opts_.resume.empty()) {
    try {
      resume_state_ = std::make_unique<recov::JournalAnalysis>(
          recov::analyze_journal(opts_.resume));
    } catch (const wire::Error& e) {
      std::fprintf(stderr, "resume: %s\n", e.what());
      std::exit(2);
    }
    if (resume_state_->torn_tail) {
      std::fprintf(stderr,
                   "resume: journal has a torn tail (%zu bytes dropped) - "
                   "expected after a crash; those cells re-evaluate\n",
                   resume_state_->dropped_bytes);
    }
    std::fprintf(stderr,
                 "resume: recovered %zu committed cell(s) across %zu "
                 "sweep(s) from %s\n",
                 resume_state_->committed_cells(),
                 resume_state_->sweeps.size(), opts_.resume.c_str());
  }
  const std::string journal_path =
      !opts_.resume.empty() ? opts_.resume : opts_.journal;
  if (!journal_path.empty()) {
    recov::JournalWriter::Options jopts;
    jopts.truncate = opts_.resume.empty();  // --journal: fresh file
    if (resume_state_ != nullptr && resume_state_->torn_tail) {
      // Cut the file at the last valid record so this run's appends stay
      // reachable by the next analysis scan.
      jopts.truncate_at = resume_state_->valid_bytes;
    }
    try {
      journal_ = std::make_unique<recov::JournalWriter>(journal_path, jopts);
    } catch (const wire::Error& e) {
      std::fprintf(stderr, "journal: %s\n", e.what());
      std::exit(1);
    }
  }
}

SweepRunner::~SweepRunner() = default;

std::uint16_t SweepRunner::shard_serve_port() const {
  return shard_listener_ != nullptr ? shard_listener_->port() : 0;
}

std::vector<CellOutcome> SweepRunner::evaluate(
    const std::vector<Scenario>& cells, const CellFn& cell_fn,
    const PlanFn* plan_fn) const {
  try {
    if (remote_lanes_ && plan_fn == nullptr) {
      std::fprintf(stderr,
                   "--connect: this sweep evaluates through a local-only "
                   "cell function and cannot run on remote workers\n");
      std::exit(2);
    }
    executor_->set_plan_fn(plan_fn != nullptr ? *plan_fn : PlanFn());
    return executor_->run(cells, cell_fn);
  } catch (const std::exception& e) {
    // Infrastructure failures (no reachable workers, fork/poll failure)
    // are not per-cell errors; die loudly instead of unwinding through
    // bench code.
    std::fprintf(stderr, "sweep: %s\n", e.what());
    std::exit(1);
  }
}

std::optional<std::vector<ResultSet>> SweepRunner::run(
    const std::vector<Scenario>& cells, const CellFn& cell_fn) {
  return run_impl(cells, cell_fn, nullptr);
}

std::optional<std::vector<ResultSet>> SweepRunner::run(
    const std::vector<Scenario>& cells, const PlanFn& plan_fn) {
  // Local executors run the exact same plans through evaluate_plan, which
  // is what makes --threads/--workers/--connect byte-identical.
  const CellFn cell_fn = [&plan_fn](const Scenario& s, std::size_t i) {
    return evaluate_plan(plan_fn(s, i), s);
  };
  return run_impl(cells, cell_fn, &plan_fn);
}

std::optional<std::vector<ResultSet>> SweepRunner::run(
    const std::vector<Scenario>& cells, const EvalBackend& backend) {
  // Registered backends go through a plan, so the sweep is
  // cluster-capable.  A custom EvalBackend implementation outside the
  // registry keeps the direct local call (remote daemons could not look
  // it up by name) - such a sweep is local-only, like any CellFn.
  if (find_backend(backend.name()) == &backend) {
    const std::string name = backend.name();
    return run(cells, PlanFn([name](const Scenario&, std::size_t) {
                 return EvalPlan{{EvalStep{name, ""}}};
               }));
  }
  return run(cells, CellFn([&backend](const Scenario& s, std::size_t) {
               return backend.evaluate(s);
             }));
}

std::optional<std::vector<ResultSet>> SweepRunner::run_impl(
    const std::vector<Scenario>& cells_in, const CellFn& cell_fn,
    const PlanFn* plan_fn) {
  // --streams=K applies here, the one choke point every bench's sweeps
  // pass through, so the stream axis reaches the grid fingerprint, the
  // shard/merge/journal paths and the evaluated cells uniformly.  K=1
  // leaves the cells untouched (bitwise-identical grids to older runs).
  std::vector<Scenario> streamed;
  if (opts_.streams > 1) {
    streamed.reserve(cells_in.size());
    for (const Scenario& cell : cells_in) {
      streamed.push_back(Scenario(cell).streams(opts_.streams));
    }
  }
  const std::vector<Scenario>& cells =
      opts_.streams > 1 ? streamed : cells_in;
  const std::size_t section = sweep_index_++;
  if (!merge_sources_.empty()) {
    // Merge mode: take section `section` from every source, applying each
    // partial to the merger as it arrives.  A file source has all its
    // sections upfront; a socket source streams each one the moment the
    // --shard-serve run finishes computing it, so the merge overlaps with
    // the shards' work.
    try {
      // The merger is pinned to THIS invocation's grid fingerprint, so a
      // merge run with different --samples/--seed than the shard runs
      // fails instead of printing tables that belong to other options.
      PartialMerger merger(cells.size(), merge_sources_.size(),
                           grid_fingerprint(cells));
      for (std::size_t f = 0; f < merge_sources_.size(); ++f) {
        const wire::Frame frame = merge_sources_[f]->next(section);
        if (frame.type != kFrameShardPartial) {
          throw wire::Error("'" + merge_sources_[f]->name +
                            "' section " + std::to_string(section) +
                            " is not a shard partial");
        }
        wire::Reader r(frame.payload);
        const ShardPartial partial = ShardPartial::decode(r);
        r.expect_done();
        try {
          merger.apply(partial);
        } catch (const wire::Error& e) {
          throw wire::Error("'" + merge_sources_[f]->name + "': " +
                            e.what());
        }
      }
      return merger.take();
    } catch (const wire::Error& e) {
      std::fprintf(stderr, "merge: %s\n", e.what());
      std::exit(1);
    }
  }

  // shard_mode covers the degenerate --shard=0/1 (one shard owning every
  // cell): it still writes/streams the partial instead of silently
  // running in normal mode.
  if (opts_.shard_mode) {
    // Shard mode: evaluate the owned cells, append one partial section.
    const std::vector<std::size_t> owned =
        shard_cell_indices(cells.size(), opts_.shard);
    std::vector<Scenario> owned_cells;
    owned_cells.reserve(owned.size());
    for (std::size_t index : owned) {
      owned_cells.push_back(cells[index]);
    }
    // Cells keep their original grid index through the remap - plans and
    // cell_fns that vary along the grid (e.g. "merge the exact backend
    // for the first four cells") must see it, not the local position.
    const PlanFn owned_plan_fn =
        plan_fn == nullptr
            ? PlanFn()
            : PlanFn([&](const Scenario& cell, std::size_t local) {
                return (*plan_fn)(cell, owned[local]);
              });
    const std::vector<CellOutcome> outcomes = evaluate(
        owned_cells,
        [&](const Scenario& cell, std::size_t local) {
          return cell_fn(cell, owned[local]);
        },
        plan_fn == nullptr ? nullptr : &owned_plan_fn);
    bool failed = false;
    for (std::size_t k = 0; k < outcomes.size(); ++k) {
      if (!outcomes[k].ok()) {
        std::fprintf(stderr, "sweep cell %zu failed: %s\n", owned[k],
                     outcomes[k].error.c_str());
        failed = true;
      }
    }
    if (failed) {
      std::exit(1);
    }
    ShardPartial partial;
    partial.shard = opts_.shard;
    partial.total_cells = cells.size();
    partial.fingerprint = grid_fingerprint(cells);
    partial.results.reserve(owned.size());
    for (std::size_t k = 0; k < owned.size(); ++k) {
      partial.results.emplace_back(owned[k], outcomes[k].result);
    }
    wire::Writer payload;
    partial.encode(payload);
    const std::vector<std::byte> frame =
        wire::seal_frame(kFrameShardPartial, payload.data());
    if (opts_.shard_serve) {
      // Stream the section to the one --merge peer the moment it exists;
      // the merge applies it while later sweeps are still computing.
      if (shard_conn_ == nullptr) {
        try {
          shard_conn_ = std::make_unique<net::FrameConn>(
              shard_listener_->accept_client());
        } catch (const net::Error& e) {
          std::fprintf(stderr, "shard: %s\n", e.what());
          std::exit(1);
        }
      }
      if (!shard_conn_->send_frame(frame)) {
        std::fprintf(stderr,
                     "shard: the --merge peer hung up before taking sweep "
                     "section %zu\n",
                     section);
        std::exit(1);
      }
      return std::nullopt;
    }
    partial_bytes_.insert(partial_bytes_.end(), frame.begin(), frame.end());
    try {
      // Rewritten after every sweep so the file is complete once the bench
      // exits (benches run a fixed sequence of sweeps).  Atomic (temp file
      // + rename): a crash mid-rewrite leaves the previous sweep's
      // complete partial, never a torn file that would poison the merge.
      wire::write_file_atomic(opts_.shard_out, partial_bytes_);
    } catch (const wire::Error& e) {
      std::fprintf(stderr, "shard: %s\n", e.what());
      std::exit(1);
    }
    return std::nullopt;
  }

  std::vector<CellOutcome> outcomes;
  if (journal_ != nullptr) {
    const std::uint64_t fingerprint = grid_fingerprint(cells);
    std::size_t precommitted = 0;
    if (resume_state_ != nullptr &&
        section < resume_state_->sweeps.size()) {
      // The redo pass: seed the dispatch core with the journal's winners;
      // only the losers reach a worker.  A journal written by a different
      // sweep (fingerprint or cell-count mismatch) is refused with exit 2
      // before anything evaluates.
      recov::ResumePlan plan;
      try {
        plan = recov::plan_resume(resume_state_->sweeps[section],
                                  cells.size(), fingerprint);
      } catch (const wire::Error& e) {
        std::fprintf(stderr, "resume: %s\n", e.what());
        std::exit(2);
      }
      precommitted = plan.committed_cells();
      std::vector<CellOutcome> seeded(cells.size());
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (plan.committed[i] != 0) {
          seeded[i].result = std::move(plan.results[i]);
        }
      }
      executor_->set_precommitted(std::move(plan.committed),
                                  std::move(seeded));
      std::fprintf(stderr,
                   "journal: sweep %zu: %zu/%zu cells already committed, "
                   "evaluating %zu\n",
                   section, precommitted, cells.size(),
                   cells.size() - precommitted);
    }
    char digest[96];
    std::snprintf(digest, sizeof(digest),
                  "samples=%zu nmax=%zu seed=%llu streams=%zu",
                  opts_.samples, opts_.nmax,
                  static_cast<unsigned long long>(opts_.seed),
                  opts_.streams);
    try {
      journal_->sweep_begin(section, fingerprint, cells.size(), digest);
    } catch (const wire::Error& e) {
      std::fprintf(stderr, "journal: %s\n", e.what());
      std::exit(1);
    }
    recov::JournalWriter* journal = journal_.get();
    executor_->set_commit_hook(
        [journal, section](std::size_t index, const CellOutcome& outcome) {
          // Only real results are journaled: an errored cell must be
          // re-evaluated by a resumed run, not replayed as an error.
          if (outcome.ok()) {
            journal->cell_committed(section, index, outcome.result);
          }
        });
    const auto t0 = std::chrono::steady_clock::now();
    outcomes = evaluate(cells, cell_fn, plan_fn);
    const long long wall_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    recov::SweepEndStats stats;
    stats.committed_cells = cells.size();
    stats.evaluated_cells = cells.size() - precommitted;
    stats.wall_ms = static_cast<std::uint64_t>(wall_ms);
    stats.cells_per_sec =
        1000.0 * static_cast<double>(stats.evaluated_cells) /
        static_cast<double>(std::max<long long>(wall_ms, 1));
    try {
      journal_->sweep_end(section, stats);
    } catch (const wire::Error& e) {
      std::fprintf(stderr, "journal: %s\n", e.what());
      std::exit(1);
    }
    std::fprintf(stderr,
                 "journal: sweep %zu done: %llu/%llu cell(s) evaluated in "
                 "%llu ms (%.1f cells/s)\n",
                 section,
                 static_cast<unsigned long long>(stats.evaluated_cells),
                 static_cast<unsigned long long>(stats.committed_cells),
                 static_cast<unsigned long long>(stats.wall_ms),
                 stats.cells_per_sec);
  } else {
    outcomes = evaluate(cells, cell_fn, plan_fn);
  }
  std::vector<ResultSet> results;
  results.reserve(outcomes.size());
  bool failed = false;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok()) {
      std::fprintf(stderr, "sweep cell %zu failed: %s\n", i,
                   outcomes[i].error.c_str());
      failed = true;
    }
  }
  if (failed) {
    std::exit(1);
  }
  for (CellOutcome& outcome : outcomes) {
    results.push_back(std::move(outcome.result));
  }
  return results;
}

std::string fmt_ci(double value, double half_width, int precision) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%.*f +- %.*f", precision, value, precision,
                half_width);
  return buf;
}

std::string fmt_dev(double measured, double reference) {
  if (reference == 0.0) {
    return "n/a";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%",
                100.0 * (measured - reference) / reference);
  return buf;
}

std::string scheme_summary(const ResultSet& async_exact,
                           const ResultSet& sync_exact,
                           const ResultSet& prp_exact) {
  std::ostringstream os;
  os << "asynchronous : E[X] = " << async_exact.value("mean_interval_x")
     << " (sd " << async_exact.value("stddev_interval_x") << "), E[L] =";
  for (std::size_t i = 0; async_exact.has(indexed_metric("rp_count_", i));
       ++i) {
    os << ' ' << async_exact.value(indexed_metric("rp_count_", i));
  }
  os << '\n';
  os << "synchronized : E[Z] = " << sync_exact.value("sync_mean_max_wait")
     << ", loss CL = " << sync_exact.value("sync_mean_loss") << '\n';
  os << "pseudo RPs   : " << prp_exact.value("prp_snapshots_per_rp")
     << " states/RP, +" << prp_exact.value("prp_time_overhead_per_rp")
     << " time/RP, rollback bound E[sup y] = "
     << prp_exact.value("prp_mean_rollback_bound");
  return os.str();
}

void print_banner(const std::string& experiment_id,
                  const std::string& description) {
  std::printf("================================================================\n");
  std::printf("%s - Shin & Lee, 'Analysis of Backward Error Recovery for\n",
              experiment_id.c_str());
  std::printf("Concurrent Processes with Recovery Blocks' (ICPP 1983)\n");
  std::printf("%s\n", description.c_str());
  std::printf("================================================================\n");
}

}  // namespace rbx
