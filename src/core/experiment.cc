#include "core/experiment.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/analyzer.h"

namespace rbx {

namespace {

[[noreturn]] void usage_error(const char* prog, const char* arg,
                              const char* why) {
  std::fprintf(stderr, "%s: bad argument '%s' (%s)\n", prog, arg, why);
  std::fprintf(stderr,
               "usage: %s [--samples=N] [--nmax=N] [--seed=N] [--threads=N]\n",
               prog);
  std::exit(2);
}

// Strict non-negative integer parse: rejects empty strings, signs,
// non-digit suffixes and out-of-range values.  strtoull itself skips
// leading whitespace and negates '-' values into huge uint64s, so insist
// the text starts with a digit.
bool parse_u64(const char* text, std::uint64_t* out) {
  if (!std::isdigit(static_cast<unsigned char>(text[0]))) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

ExperimentOptions ExperimentOptions::parse(int argc, char** argv,
                                           std::size_t default_samples,
                                           std::size_t default_nmax) {
  ExperimentOptions opts;
  opts.samples = default_samples;
  opts.nmax = default_nmax;
  const char* prog = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    std::uint64_t* target = nullptr;
    std::uint64_t parsed = 0;
    std::size_t* size_target = nullptr;
    if (std::strncmp(arg, "--samples=", 10) == 0) {
      value = arg + 10;
      size_target = &opts.samples;
    } else if (std::strncmp(arg, "--nmax=", 7) == 0) {
      value = arg + 7;
      size_target = &opts.nmax;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      value = arg + 7;
      target = &opts.seed;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      value = arg + 10;
      size_target = &opts.threads;
    } else {
      usage_error(prog, arg, "unknown flag");
    }
    if (!parse_u64(value, &parsed)) {
      usage_error(prog, arg, "expected a non-negative integer");
    }
    if (size_target == &opts.threads && parsed == 0) {
      usage_error(prog, arg, "thread count must be >= 1");
    }
    if (target != nullptr) {
      *target = parsed;
    } else {
      *size_target = static_cast<std::size_t>(parsed);
    }
  }
  // 0 keeps the bench's default budget (documented escape hatch, and what
  // --nmax=0 has always meant).
  if (opts.samples == 0) {
    opts.samples = default_samples;
  }
  if (opts.nmax == 0) {
    opts.nmax = default_nmax;
  }
  return opts;
}

std::string fmt_ci(double value, double half_width, int precision) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%.*f +- %.*f", precision, value, precision,
                half_width);
  return buf;
}

std::string fmt_dev(double measured, double reference) {
  if (reference == 0.0) {
    return "n/a";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%",
                100.0 * (measured - reference) / reference);
  return buf;
}

std::string scheme_summary(const ResultSet& async_exact,
                           const ResultSet& sync_exact,
                           const ResultSet& prp_exact) {
  // Adapter onto the one three-line formatter, SchemeComparison::summary()
  // (also reached through the legacy Analyzer route).
  SchemeComparison cmp;
  cmp.mean_interval_x = async_exact.value("mean_interval_x");
  cmp.stddev_interval_x = async_exact.value("stddev_interval_x");
  for (std::size_t i = 0; async_exact.has(indexed_metric("rp_count_", i));
       ++i) {
    cmp.rp_counts.push_back(async_exact.value(indexed_metric("rp_count_", i)));
  }
  cmp.sync_mean_max_wait = sync_exact.value("sync_mean_max_wait");
  cmp.sync_mean_loss = sync_exact.value("sync_mean_loss");
  cmp.prp_snapshots_per_rp = prp_exact.value("prp_snapshots_per_rp");
  cmp.prp_time_overhead_per_rp = prp_exact.value("prp_time_overhead_per_rp");
  cmp.prp_mean_rollback_bound = prp_exact.value("prp_mean_rollback_bound");
  return cmp.summary();
}

void print_banner(const std::string& experiment_id,
                  const std::string& description) {
  std::printf("================================================================\n");
  std::printf("%s - Shin & Lee, 'Analysis of Backward Error Recovery for\n",
              experiment_id.c_str());
  std::printf("Concurrent Processes with Recovery Blocks' (ICPP 1983)\n");
  std::printf("%s\n", description.c_str());
  std::printf("================================================================\n");
}

}  // namespace rbx
