// One-call analysis of a process set under all three recovery schemes.
//
// Bundles the Section 2 asynchronous-RB chain, the Section 3 synchronized
// loss model and the Section 4 PRP overhead model behind a single call so
// applications can compare schemes without touching the individual models.
//
// LEGACY SHIM: new code should build a Scenario and evaluate it through
// analytic_backend() (core/backend.h), which covers the same models plus
// scheme selection, and composes with SweepEngine and the other backends.
// Analyzer is kept so existing callers keep compiling; it adds no
// functionality over the backend route.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/params.h"

namespace rbx {

struct SchemeComparison {
  // Asynchronous RBs (Section 2).
  double mean_interval_x = 0.0;       // E[X] between recovery lines
  double stddev_interval_x = 0.0;
  std::vector<double> rp_counts;      // E[L_i], convention (a)
  // Synchronized RBs (Section 3).
  double sync_mean_max_wait = 0.0;    // E[Z]
  double sync_mean_loss = 0.0;        // CL per synchronization
  // Pseudo recovery points (Section 4).
  double prp_snapshots_per_rp = 0.0;  // n
  double prp_time_overhead_per_rp = 0.0;
  double prp_mean_rollback_bound = 0.0;  // E[sup y_i]

  std::string summary() const;
};

class Analyzer {
 public:
  // t_record: state-recording time used by the PRP overhead figures.
  explicit Analyzer(ProcessSetParams params, double t_record = 0.0);

  const ProcessSetParams& params() const { return params_; }

  // Full comparison (builds the 2^n + 1 state chain: n <= 12).
  SchemeComparison compare() const;

  // Analytic density f_X(t) on a uniform grid (Figure 6).
  std::vector<double> interval_density_grid(double t_max,
                                            std::size_t points) const;

 private:
  ProcessSetParams params_;
  double t_record_;
};

}  // namespace rbx
