#include "core/eval_context.h"

namespace rbx {

namespace {
thread_local EvalContext g_eval_context;  // defaults to thread_budget = 1
}  // namespace

const EvalContext& current_eval_context() { return g_eval_context; }

EvalContextScope::EvalContextScope(EvalContext ctx)
    : previous_(g_eval_context) {
  g_eval_context = ctx;
}

EvalContextScope::~EvalContextScope() { g_eval_context = previous_; }

}  // namespace rbx
