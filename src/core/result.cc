#include "core/result.h"

#include <cstdio>
#include <sstream>

#include "support/check.h"

namespace rbx {

std::string indexed_metric(const char* stem, std::size_t i) {
  std::string name(stem);
  name += std::to_string(i + 1);
  return name;
}

ResultSet::ResultSet(std::string backend, std::string scenario)
    : backend_(std::move(backend)), scenario_(std::move(scenario)) {}

void ResultSet::set(const std::string& name, double value, double half_width,
                    std::size_t count) {
  for (Metric& m : metrics_) {
    if (m.name == name) {
      m.value = value;
      m.half_width = half_width;
      m.count = count;
      return;
    }
  }
  metrics_.push_back(Metric{name, value, half_width, count});
}

const Metric* ResultSet::find(const std::string& name) const {
  for (const Metric& m : metrics_) {
    if (m.name == name) {
      return &m;
    }
  }
  return nullptr;
}

bool ResultSet::has(const std::string& name) const {
  return find(name) != nullptr;
}

double ResultSet::value(const std::string& name) const {
  const Metric* m = find(name);
  RBX_CHECK_MSG(m != nullptr, "unknown metric requested from ResultSet");
  return m->value;
}

double ResultSet::value_or(const std::string& name, double fallback) const {
  const Metric* m = find(name);
  return m != nullptr ? m->value : fallback;
}

const Metric& ResultSet::metric(const std::string& name) const {
  const Metric* m = find(name);
  RBX_CHECK_MSG(m != nullptr, "unknown metric requested from ResultSet");
  return *m;
}

void ResultSet::merge(const ResultSet& other, const std::string& prefix) {
  for (const Metric& m : other.metrics_) {
    set(prefix + m.name, m.value, m.half_width, m.count);
  }
}

std::string ResultSet::to_string() const {
  std::ostringstream os;
  os << backend_ << " / " << scenario_ << "\n";
  for (const Metric& m : metrics_) {
    char line[160];
    if (m.exact()) {
      std::snprintf(line, sizeof(line), "  %-28s = %.6g\n", m.name.c_str(),
                    m.value);
    } else {
      std::snprintf(line, sizeof(line), "  %-28s = %.6g +- %.6g (%zu samples)\n",
                    m.name.c_str(), m.value, m.half_width, m.count);
    }
    os << line;
  }
  return os.str();
}

void ResultSet::encode(wire::Writer& w) const {
  w.str(backend_);
  w.str(scenario_);
  if (metrics_.size() > UINT32_MAX) {
    throw wire::Error("result set: too many metrics to encode");
  }
  w.u32(static_cast<std::uint32_t>(metrics_.size()));
  for (const Metric& m : metrics_) {
    w.str(m.name);
    w.f64(m.value);
    w.f64(m.half_width);
    w.u64(m.count);
  }
}

ResultSet ResultSet::decode(wire::Reader& r) {
  ResultSet out;
  out.backend_ = r.str();
  out.scenario_ = r.str();
  const std::uint32_t count = r.u32();
  // Each metric needs at least its name length prefix plus the three
  // fixed fields; reject corrupt counts before reserving.
  if (r.remaining() / (4 + 8 + 8 + 8) < count) {
    throw wire::Error("result set: truncated metric list");
  }
  out.metrics_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Metric m;
    m.name = r.str();
    m.value = r.f64();
    m.half_width = r.f64();
    m.count = static_cast<std::size_t>(r.u64());
    out.metrics_.push_back(std::move(m));
  }
  return out;
}

bool operator==(const ResultSet& a, const ResultSet& b) {
  if (a.backend_ != b.backend_ || a.scenario_ != b.scenario_ ||
      a.metrics_.size() != b.metrics_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.metrics_.size(); ++i) {
    const Metric& x = a.metrics_[i];
    const Metric& y = b.metrics_[i];
    if (x.name != y.name || x.value != y.value ||
        x.half_width != y.half_width || x.count != y.count) {
      return false;
    }
  }
  return true;
}

}  // namespace rbx
