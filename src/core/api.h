// Umbrella header: the public API of the recovery-blocks library.
//
// The library reproduces and extends Shin & Lee's analysis of backward
// error recovery for concurrent processes (ICPP 1983).  The primary entry
// points are three core abstractions:
//
//   Scenario     one experiment definition: process-set rates, recovery
//                scheme, fault injection, workload shape, seed and
//                stream count (core/scenario.h).  streams(K) partitions
//                a Monte-Carlo cell's sample budget into K deterministic
//                RNG sub-streams (derive_stream_seed) that simulate on
//                the cell's intra-cell thread pool and merge in fixed
//                stream order - for a given K the result is a pure
//                function of the scenario, independent of thread count
//                and lane; K=1 (default) is the exact sequential path;
//   EvalBackend  an evaluation semantics for a Scenario, returning a
//                ResultSet of named metrics (core/backend.h,
//                core/result.h).  Nine registered singletons: "analytic"
//                (Markov/closed-form), "monte-carlo" (DES), "runtime"
//                (real threads), "density-analytic"/"density-mc" (the
//                Figure 6 density grid, core/density_backend.h),
//                "line-exact" (exact pairwise recovery-line detection)
//                and "hybrid" (PRP + periodic sync, both
//                core/ablation_backend.h), "markov-structure" (chain
//                inventories, core/structure_backend.h), and
//                "micro-markov" (Markov-engine timing kernels,
//                perf/micro_backend.h);
//   SweepEngine  parameter-grid expansion and parallel evaluation of
//                scenario batches with deterministic per-cell seeding
//                (core/sweep.h);
//   Executor     where sweep cells run (core/executor.h).  Every executor
//                is a lane configuration over the one shared scheduler,
//                DispatchCore (core/dispatch.h): InProcessExecutor (a
//                ThreadLane of worker threads), MultiProcessExecutor (a
//                ForkLane of forked workers, respawned on crash),
//                net::ClusterExecutor (a TcpLane of remote sweep_workerd
//                daemons, net/cluster.h) and HybridExecutor (any mix of
//                lanes in a single sweep), all returning per-cell
//                outcomes bitwise identical to a serial run;
//   DispatchCore the scheduler itself (core/dispatch.h): cell queue,
//                adaptive batch sizing, per-cell in-flight accounting
//                under a committed mask, straggler work stealing, loss
//                reconciliation, streaming result merge, and mid-sweep
//                re-admission of lost workers - shared by every lane
//                kind, so forked workers get stealing and adaptive
//                batching exactly as cluster workers do;
//   EvalContext  the ambient per-evaluation thread budget
//                (core/eval_context.h): lanes install it around their
//                serve loops (DispatchOptions::eval_threads, adaptive by
//                default - a lane raising fewer workers than its
//                configured parallelism hands the spare threads to each
//                worker's intra-cell stream pool), worker daemons set it
//                from --eval-threads, and the Monte-Carlo backends read
//                it to size their stream pools - it bounds resources
//                only and never changes output;
//   EvalPlan     a sweep cell's evaluation recipe as data - which
//                backends to run and how to merge their metrics - so a
//                cell can ship to a worker daemon that has no access to
//                bench closures (core/backend.h);
//   ShardSpec    k-way deterministic split of an expanded grid for
//                multi-host batch sweeps: shard i of k evaluates cells
//                with index % k == i, writes a ShardPartial, and
//                PartialMerger / merge_shard_partials() reassembles the
//                exact unsharded result vector (core/executor.h);
//   SweepJournal crash durability (recov/journal.h, recov/resume.h): a
//                CRC'd write-ahead log of cell commits, an ARIES-style
//                analysis pass tolerating torn tails, and resume planning
//                that seeds DispatchCore with the recovered winners so a
//                SIGKILLed sweep restarts evaluating only the losers
//                (--journal/--resume on every bench) - output bitwise
//                identical to an uninterrupted run;
//   ResultCache  the worker daemon's disk-backed cell cache
//                (recov/cache.h, sweep_workerd --cache-dir): a repeated
//                sweep is answered from disk without re-evaluating,
//                bypassed per-sweep by --no-cache and size-capped at
//                startup by --cache-max-bytes;
//   FleetRegistry the elastic shared fleet (fleet/registry.h, fleet/lane.h,
//                fleet_registryd): sweep_workerd daemons join a registry
//                and heartbeat it (silence past the eviction window drops
//                them from the pool), coordinators resolve the live
//                members with --fleet=HOST:PORT instead of naming
//                endpoints, contending sweeps are leased disjoint
//                weighted fair shares, a worker lost mid-sweep is
//                backfilled by any member - including one that joined
//                after the sweep started - and one pre-shared key
//                (fleet/auth.h, --auth-key-file) authenticates every
//                handshake via HMAC-SHA256 challenge/response plus
//                registry-signed lease tokens;
//   BenchReport  the perf trajectory (perf/bench.h, perf/report.h): named
//                micro-kernels spanning every layer below, measured by
//                the perf_bench tool into BENCH_<label>.json files, with
//                journal sweep-end counters imported alongside and a
//                --compare mode that fails on regressions.
//
// Scenario and ResultSet have exact binary round-trips (encode/decode on
// support/wire.h) - the executors and shard files depend on doubles being
// bit-preserved on the wire, which is what makes every execution mode
// print identical tables.
//
// A scenario flows through all three backends unchanged:
//
//   const Scenario s = Scenario::symmetric(3, 1.0, 1.0);
//   ResultSet exact = analytic_backend().evaluate(s);
//   ResultSet mc    = monte_carlo_backend().evaluate(s);
//   ResultSet real  = runtime_backend().evaluate(s);
//   // exact.value("mean_interval_x") vs mc.metric("mean_interval_x")...
//
// and sweeps replace hand-written bench loops:
//
//   auto cells = SweepGrid(s).axis({2, 3, 4, 5}, apply_n)
//                    .expand(master_seed);
//   auto results = SweepEngine({opts.threads})
//                      .run(cells, monte_carlo_backend());
//
// The same cells sharded across two hosts reproduce those results
// bitwise:
//
//   host A: outcomes for shard_cell_indices(cells.size(), {0, 2})
//   host B: outcomes for shard_cell_indices(cells.size(), {1, 2})
//   merge_shard_partials({A, B}) == SweepEngine(...).run(cells, ...)
//
// (benches expose this as --shard=i/k + --merge=A,B, where a merge
// source is a partial file or the HOST:PORT of a --shard-serve run
// streaming partials as they finish; see core/experiment.h's
// SweepRunner).  For one live sweep spanning many machines - and the
// local machine at once - the lane flags compose:
//
//   fig5_mean_interval --threads=8 --workers=4
//                      --connect=hostA:4701,hostB:4701 --steal
//
// runs threads, forked workers and remote sweep_workerd daemons under
// one DispatchCore, streaming plan-carrying cell batches to whichever
// worker is idle and merging results as they arrive - still
// byte-identical to --threads=1.  The daemons are long-running and serve
// several coordinators concurrently (one session per connection, capped
// by --max-coordinators), so many sweeps share one worker fleet.  The
// scheduler applies the paper's backward error recovery to the pool
// itself: a lost worker's in-flight cells are re-queued to the
// survivors; --steal re-dispatches a *slow* worker's unanswered tail to
// idle workers once the queue is empty, committing whichever answer
// arrives first; and a lost worker that comes back (a restarted daemon,
// a respawned fork child) is *re-admitted* mid-sweep after
// re-handshaking against the same grid fingerprint.  Because per-cell
// seeds make every evaluation bitwise identical, none of recovery,
// stealing or re-admission can change a printed table.
//
// Layered as follows (each layer usable on its own):
//
//   support/   deterministic RNG, statistics, tables, the wire format,
//              EINTR-safe fd I/O
//   numerics/  dense/sparse linear algebra, ODE, quadrature, Poisson
//   markov/    CTMC/DTMC engine, phase-type distributions
//   model/     the paper's analytic models (Sections 2-4)
//   trace/     histories, exact recovery lines, rollback planning
//   des/       Monte-Carlo simulators of the three schemes
//   runtime/   thread-based processes with real checkpoint/rollback
//   core/      Scenario + EvalBackend + SweepEngine + Executor/ShardSpec,
//              DispatchCore + ThreadLane/ForkLane (core/dispatch.h,
//              core/lane.h); the specialized backends (density, ablation,
//              structure) live here too
//   net/       the TCP lane of the dispatch layer (TcpLane,
//              ClusterExecutor, WorkerServer)
//   fleet/     the shared-fleet subsystem: registry + membership
//              (join/heartbeat/leave), fair-share leasing, pre-shared-key
//              auth (HMAC-SHA256, signed leases), FleetLane (--fleet)
//   recov/     crash durability: sweep journal + resume planning +
//              the worker-side result cache
//   perf/      the bench harness: kernel registry, interval measurement,
//              BENCH_*.json reports and regression compare (perf_bench);
//              also the registered "micro-markov" timing backend
//              (perf/micro_backend.h)
//
// The per-layer entry points (AsyncRbModel, SyncRbSimulator,
// RecoverySystem, ...) remain public for code that needs one layer only;
// new code should prefer the Scenario/EvalBackend route so experiments
// stay portable across evaluation semantics.
#pragma once

#include "core/backend.h"              // IWYU pragma: export
#include "core/dispatch.h"             // IWYU pragma: export
#include "core/executor.h"             // IWYU pragma: export
#include "core/experiment.h"           // IWYU pragma: export
#include "core/lane.h"                 // IWYU pragma: export
#include "core/result.h"               // IWYU pragma: export
#include "core/scenario.h"             // IWYU pragma: export
#include "core/sweep.h"                // IWYU pragma: export
#include "des/async_sim.h"             // IWYU pragma: export
#include "des/prp_sim.h"               // IWYU pragma: export
#include "des/sync_sim.h"              // IWYU pragma: export
#include "fleet/auth.h"                // IWYU pragma: export
#include "fleet/client.h"              // IWYU pragma: export
#include "fleet/lane.h"                // IWYU pragma: export
#include "fleet/proto.h"               // IWYU pragma: export
#include "fleet/registry.h"            // IWYU pragma: export
#include "model/async_model.h"         // IWYU pragma: export
#include "model/async_symmetric.h"     // IWYU pragma: export
#include "model/params.h"              // IWYU pragma: export
#include "model/prp_model.h"           // IWYU pragma: export
#include "model/sync_model.h"          // IWYU pragma: export
#include "net/cluster.h"               // IWYU pragma: export
#include "net/worker.h"                // IWYU pragma: export
#include "perf/bench.h"                // IWYU pragma: export
#include "perf/report.h"               // IWYU pragma: export
#include "recov/cache.h"               // IWYU pragma: export
#include "recov/journal.h"             // IWYU pragma: export
#include "recov/resume.h"              // IWYU pragma: export
#include "runtime/system.h"            // IWYU pragma: export
#include "support/table.h"             // IWYU pragma: export
#include "support/wire.h"              // IWYU pragma: export
#include "trace/dot.h"                 // IWYU pragma: export
#include "trace/prp_plan.h"            // IWYU pragma: export
#include "trace/recovery_line.h"       // IWYU pragma: export
#include "trace/rollback.h"            // IWYU pragma: export
