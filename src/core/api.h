// Umbrella header: the public API of the recovery-blocks library.
//
// Layered as follows (each layer usable on its own):
//
//   support/   deterministic RNG, statistics, tables
//   numerics/  dense/sparse linear algebra, ODE, quadrature, Poisson
//   markov/    CTMC/DTMC engine, phase-type distributions
//   model/     the paper's analytic models (Sections 2-4)
//   trace/     histories, exact recovery lines, rollback planning
//   des/       Monte-Carlo simulators of the three schemes
//   runtime/   thread-based processes with real checkpoint/rollback
//   core/      this facade: Analyzer + experiment helpers
#pragma once

#include "core/analyzer.h"          // IWYU pragma: export
#include "core/experiment.h"        // IWYU pragma: export
#include "des/async_sim.h"          // IWYU pragma: export
#include "des/prp_sim.h"            // IWYU pragma: export
#include "des/sync_sim.h"           // IWYU pragma: export
#include "model/async_model.h"      // IWYU pragma: export
#include "model/async_symmetric.h"  // IWYU pragma: export
#include "model/params.h"           // IWYU pragma: export
#include "model/prp_model.h"        // IWYU pragma: export
#include "model/sync_model.h"       // IWYU pragma: export
#include "runtime/system.h"         // IWYU pragma: export
#include "support/table.h"          // IWYU pragma: export
#include "trace/dot.h"              // IWYU pragma: export
#include "trace/prp_plan.h"         // IWYU pragma: export
#include "trace/recovery_line.h"    // IWYU pragma: export
#include "trace/rollback.h"         // IWYU pragma: export
