// Umbrella header: the public API of the recovery-blocks library.
//
// The library reproduces and extends Shin & Lee's analysis of backward
// error recovery for concurrent processes (ICPP 1983).  The primary entry
// points are three core abstractions:
//
//   Scenario     one experiment definition: process-set rates, recovery
//                scheme, fault injection, workload shape and seed
//                (core/scenario.h);
//   EvalBackend  an evaluation semantics for a Scenario - analytic Markov
//                models, Monte-Carlo simulation, or the real thread
//                runtime - returning a ResultSet of named metrics
//                (core/backend.h, core/result.h);
//   SweepEngine  parameter-grid expansion and parallel evaluation of
//                scenario batches with deterministic per-cell seeding
//                (core/sweep.h);
//   Executor     where sweep cells run (core/executor.h):
//                InProcessExecutor (thread pool), MultiProcessExecutor
//                (forked workers fed wire-encoded cell batches over
//                pipes) or net::ClusterExecutor (remote sweep_workerd
//                daemons over TCP, net/cluster.h), all returning
//                per-cell outcomes bitwise identical to a serial run;
//   EvalPlan     a sweep cell's evaluation recipe as data - which
//                backends to run and how to merge their metrics - so a
//                cell can ship to a worker daemon that has no access to
//                bench closures (core/backend.h);
//   ShardSpec    k-way deterministic split of an expanded grid for
//                multi-host batch sweeps: shard i of k evaluates cells
//                with index % k == i, writes a ShardPartial, and
//                PartialMerger / merge_shard_partials() reassembles the
//                exact unsharded result vector (core/executor.h).
//
// Scenario and ResultSet have exact binary round-trips (encode/decode on
// support/wire.h) - the executors and shard files depend on doubles being
// bit-preserved on the wire, which is what makes every execution mode
// print identical tables.
//
// A scenario flows through all three backends unchanged:
//
//   const Scenario s = Scenario::symmetric(3, 1.0, 1.0);
//   ResultSet exact = analytic_backend().evaluate(s);
//   ResultSet mc    = monte_carlo_backend().evaluate(s);
//   ResultSet real  = runtime_backend().evaluate(s);
//   // exact.value("mean_interval_x") vs mc.metric("mean_interval_x")...
//
// and sweeps replace hand-written bench loops:
//
//   auto cells = SweepGrid(s).axis({2, 3, 4, 5}, apply_n)
//                    .expand(master_seed);
//   auto results = SweepEngine({opts.threads})
//                      .run(cells, monte_carlo_backend());
//
// The same cells sharded across two hosts reproduce those results
// bitwise:
//
//   host A: outcomes for shard_cell_indices(cells.size(), {0, 2})
//   host B: outcomes for shard_cell_indices(cells.size(), {1, 2})
//   merge_shard_partials({A, B}) == SweepEngine(...).run(cells, ...)
//
// (benches expose this as --shard=i/k + --merge=fileA,fileB; see
// core/experiment.h's SweepRunner).  For one live sweep spanning many
// hosts, net::ClusterExecutor streams plan-carrying cell batches to
// sweep_workerd daemons (--connect=hostA:4701,hostB:4701), merges
// results as they arrive, and re-queues a lost worker's in-flight cells
// to the survivors - still byte-identical.  The daemons are long-running
// and serve several coordinators concurrently (one session per
// connection, capped by --max-coordinators), so many sweeps share one
// worker fleet; --steal additionally re-dispatches a *slow* worker's
// unanswered tail to idle workers once the queue is empty, committing
// whichever answer arrives first and ignoring the late duplicate - a
// stalled-but-connected host bounds nothing but its own contribution,
// and because per-cell seeds make both evaluations bitwise identical,
// neither stealing nor recovery can change a printed table.
//
// Layered as follows (each layer usable on its own):
//
//   support/   deterministic RNG, statistics, tables, the wire format,
//              EINTR-safe fd I/O
//   numerics/  dense/sparse linear algebra, ODE, quadrature, Poisson
//   markov/    CTMC/DTMC engine, phase-type distributions
//   model/     the paper's analytic models (Sections 2-4)
//   trace/     histories, exact recovery lines, rollback planning
//   des/       Monte-Carlo simulators of the three schemes
//   runtime/   thread-based processes with real checkpoint/rollback
//   core/      Scenario + EvalBackend + SweepEngine + Executor/ShardSpec
//   net/       the TCP cluster transport (ClusterExecutor, WorkerServer)
//
// The per-layer entry points (AsyncRbModel, SyncRbSimulator,
// RecoverySystem, ...) remain public for code that needs one layer only;
// new code should prefer the Scenario/EvalBackend route so experiments
// stay portable across evaluation semantics.
#pragma once

#include "core/backend.h"              // IWYU pragma: export
#include "core/executor.h"             // IWYU pragma: export
#include "core/experiment.h"           // IWYU pragma: export
#include "core/result.h"               // IWYU pragma: export
#include "core/scenario.h"             // IWYU pragma: export
#include "core/sweep.h"                // IWYU pragma: export
#include "des/async_sim.h"             // IWYU pragma: export
#include "des/prp_sim.h"               // IWYU pragma: export
#include "des/sync_sim.h"              // IWYU pragma: export
#include "model/async_model.h"         // IWYU pragma: export
#include "model/async_symmetric.h"     // IWYU pragma: export
#include "model/params.h"              // IWYU pragma: export
#include "model/prp_model.h"           // IWYU pragma: export
#include "model/sync_model.h"          // IWYU pragma: export
#include "net/cluster.h"               // IWYU pragma: export
#include "net/worker.h"                // IWYU pragma: export
#include "runtime/system.h"            // IWYU pragma: export
#include "support/table.h"             // IWYU pragma: export
#include "support/wire.h"              // IWYU pragma: export
#include "trace/dot.h"                 // IWYU pragma: export
#include "trace/prp_plan.h"            // IWYU pragma: export
#include "trace/recovery_line.h"       // IWYU pragma: export
#include "trace/rollback.h"            // IWYU pragma: export
