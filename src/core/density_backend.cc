#include "core/density_backend.h"

#include <string>
#include <vector>

#include "core/monte_carlo_backend.h"
#include "des/async_sim.h"
#include "model/async_model.h"
#include "support/check.h"
#include "support/stats.h"

namespace rbx {

double density_grid_t(std::size_t i) {
  return kDensityTMax * static_cast<double>(i) /
         static_cast<double>(kDensityPoints - 1);
}

namespace {

std::string grid_metric(const char* stem, std::size_t i) {
  return std::string(stem) + std::to_string(i);
}

}  // namespace

bool DensityAnalyticBackend::supports(const Scenario& scenario) const {
  // The density needs the full phase-type chain (2^n + 1 states).
  return scenario.scheme() == SchemeKind::kAsynchronous &&
         scenario.n() <= 12;
}

ResultSet DensityAnalyticBackend::evaluate(const Scenario& scenario) const {
  RBX_CHECK_MSG(supports(scenario),
                "density-analytic needs an asynchronous scenario with "
                "n <= 12");
  ResultSet out(name(), scenario.label());
  AsyncRbModel model(scenario.params());
  const std::vector<double> grid =
      model.interval().pdf_grid(kDensityTMax, kDensityPoints);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    out.set(grid_metric("density_f_", i), grid[i]);
  }
  // The paper's "sharp impulse near t = 0": f_X(0) = sum mu (rule R4's
  // direct S_r -> S_{r+1} transition), and E[X] for cross-backend joins.
  out.set("density_f0", model.interval_pdf(0.0));
  out.set("mean_interval_x", model.mean_interval());
  return out;
}

bool DensityMonteCarloBackend::supports(const Scenario& scenario) const {
  return scenario.scheme() == SchemeKind::kAsynchronous;
}

ResultSet DensityMonteCarloBackend::evaluate(const Scenario& scenario) const {
  RBX_CHECK_MSG(supports(scenario),
                "density-mc needs an asynchronous scenario");
  ResultSet out(name(), scenario.label());
  // Stream-aware (Scenario::streams); with streams > 1 the merged
  // interval carries every stream's samples in fixed stream order, so
  // the histogram - itself order-independent - is thread-count
  // invariant just like the scalar metrics.
  const AsyncSimResult r = run_async_monte_carlo(scenario);
  Histogram h(0.0, kDensityTMax, kDensityPoints - 1);
  for (double x : r.interval.samples()) {
    h.add(x);
  }
  for (std::size_t i = 0; i < h.bins(); ++i) {
    out.set(grid_metric("density_bin_", i), h.density(i), 0.0,
            h.bin_count(i));
  }
  out.set("density_samples", static_cast<double>(h.total()));
  out.set("mean_interval_x", r.interval.mean(), r.interval.ci_half_width(),
          r.interval.count());
  return out;
}

}  // namespace rbx
