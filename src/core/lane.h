// Lanes: where a sweep's cells physically run, behind one dispatch loop.
//
// DispatchCore (core/dispatch.h) schedules cells without caring whether a
// worker is a thread, a forked process or a TCP daemon on another host.
// A Lane supplies the workers of one kind, and every worker speaks the
// same framed protocol over a stream fd - the kFrameCellBatch /
// kFrameResultBatch currency of core/executor.h - so the coordinator can
// poll them all in one event loop:
//
//   ThreadLane   worker threads inside this process, one socketpair each;
//                the thread runs the same serve loop a forked child does,
//                evaluating cells through the sweep's cell_fn closure;
//   ForkLane     forked worker processes (process isolation: an aborting
//                cell cannot take the sweep down), respawned on crash so
//                one poisoned cell costs a retry, not a worker;
//   TcpLane      remote sweep_workerd daemons (net/cluster.h) - cells
//                carry EvalPlans, sweeps open with a versioned Hello
//                handshake, and a lost endpoint is re-admitted mid-sweep
//                once it reconnects and re-handshakes.
//
// The handshake frames (Hello / HelloAck / Error) live here rather than
// in net/ because the shared dispatch loop validates acks itself; they
// are pure wire codecs with no socket dependency, and net/frame.h
// re-exports them under rbx::net for the worker daemon and its tests.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/executor.h"
#include "support/wire.h"

namespace rbx {

// --- cluster control frames ----------------------------------------------
// (the executor data frames kFrameCellBatch/kFrameResultBatch/
// kFrameShardPartial are 1..3, in core/executor.h)

inline constexpr std::uint16_t kFrameHello = 16;
inline constexpr std::uint16_t kFrameHelloAck = 17;
inline constexpr std::uint16_t kFrameError = 18;
// Authentication exchange inside the handshake (fleet/auth.h): a keyed
// worker answers an auth-flagged Hello with a challenge nonce; the
// coordinator proves key possession with an HMAC response before the ack.
inline constexpr std::uint16_t kFrameAuthChallenge = 19;
inline constexpr std::uint16_t kFrameAuthResponse = 20;

// Version of the cluster conversation itself (handshake, batching rules).
// Bump on incompatible protocol changes; both sides refuse a mismatch.
// v2 added the flags word to Hello; v3 the auth/lease fields.
inline constexpr std::uint32_t kProtocolVersion = 3;

// Hello.flags bits.
inline constexpr std::uint32_t kHelloFlagNoCache = 1;  // bypass the worker's
                                                       // result cache for
                                                       // this session
inline constexpr std::uint32_t kHelloFlagAuth = 2;   // coordinator holds the
                                                     // pre-shared key; send a
                                                     // challenge before acking
inline constexpr std::uint32_t kHelloFlagLease = 4;  // lease_token/lease_sig
                                                     // carry a registry grant

struct Hello {
  std::uint32_t protocol = kProtocolVersion;
  std::uint16_t wire_version = wire::kVersion;
  std::uint64_t fingerprint = 0;  // grid_fingerprint of the sweep
  std::uint64_t total_cells = 0;
  std::uint32_t flags = 0;        // kHelloFlag* bits
  // Fleet lease (kHelloFlagLease): the registry-issued token and its HMAC
  // signature (fleet/auth.h), which the worker verifies against the
  // pre-shared key without talking to the registry.  Zero otherwise.
  std::uint64_t lease_token = 0;
  std::uint64_t lease_sig = 0;

  void encode(wire::Writer& w) const;
  static Hello decode(wire::Reader& r);
};

// --- FrameChannel ---------------------------------------------------------

// Framed traffic over one owned stream fd (a socketpair end or a TCP
// socket): buffered reassembly of frames that arrive split across reads,
// and poll-friendly non-greedy fills for the coordinator's multiplexed
// event loop.  net::FrameConn is this class adopting a net::Socket.
class FrameChannel {
 public:
  FrameChannel() = default;
  explicit FrameChannel(int fd) : fd_(fd) {}
  ~FrameChannel() { close(); }

  FrameChannel(FrameChannel&& other) noexcept;
  FrameChannel& operator=(FrameChannel&& other) noexcept;
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  int fd() const { return fd_; }
  bool open() const { return fd_ >= 0; }
  void close();

  // Wakes a recv() blocked in another thread by shutting the fd down
  // (both directions); the blocked call sees EOF and returns false.  The
  // fd itself stays owned by this channel - safe to call while another
  // thread is inside recv(), unlike close().
  void abort();

  // Seals and writes one frame; false if the peer is gone.
  bool send(std::uint16_t type, const std::vector<std::byte>& payload);
  // Writes an already-sealed frame.
  bool send_frame(const std::vector<std::byte>& framed);

  // Reads once from the fd into the reassembly buffer (use after poll()
  // said the fd is readable).  False on EOF or error - the connection is
  // finished; frames already buffered can still be popped.
  bool fill();

  // Pops the next complete frame out of the buffer.  Throws wire::Error
  // on corrupt framing (bad magic / version / length).
  bool pop(wire::Frame* out);

  // Blocking receive: fill until one frame is complete.  False on EOF
  // before a full frame; throws wire::Error on corrupt framing.
  bool recv(wire::Frame* out);

 private:
  int fd_ = -1;
  std::vector<std::byte> buf_;
};

// --- worker/lane interfaces ----------------------------------------------

// One worker endpoint a DispatchCore can feed cell batches.  The worker is
// identified to the scheduler by its channel; a null/closed channel means
// the worker is lost (and may be revivable, below).
class LaneWorker {
 public:
  virtual ~LaneWorker() = default;

  virtual std::string describe() const = 0;

  // The worker's framed channel; closed = lost.
  virtual FrameChannel* channel() = 0;

  // Cells sent to this worker must carry EvalPlans (a remote daemon
  // cannot execute the sweep's local cell_fn closure).
  virtual bool needs_plan() const { return false; }

  // Whether every sweep must open with a Hello/HelloAck handshake on this
  // worker (remote daemons validate protocol/wire versions and the grid
  // fingerprint; in-process workers share the build and skip it).
  virtual bool needs_handshake() const { return false; }

  // Lets a worker amend the sweep's Hello before it is sent - an
  // authenticated worker sets kHelloFlagAuth, a fleet-leased worker adds
  // its lease token and signature.  Default: the Hello goes out as-is.
  virtual void prepare_hello(Hello& hello) const { (void)hello; }

  // Answers a kFrameAuthChallenge received during the handshake: the
  // HMAC over `challenge` under the worker's pre-shared key (fleet/auth.h).
  // Empty = this worker holds no key (the dispatch loop refuses the
  // handshake rather than answering with garbage).
  virtual std::string auth_response(const std::string& challenge) const {
    (void)challenge;
    return {};
  }

  // Drops the channel (and hangs up on whatever is behind it).
  virtual void retire() = 0;

  // --- revival: the backward-error-recovery loop applied to the pool ---
  //
  // A lost worker that can_revive() is retried on a backoff timer.
  // revive() re-establishes the channel: kReady means it is usable now
  // (a respawned fork worker), kPending means a non-blocking connect is
  // in flight - poll channel()->fd() for writability, then call
  // revive_finish() - and kFailed schedules the next backoff.
  enum class Revive { kFailed, kPending, kReady };
  virtual bool can_revive() const { return false; }
  virtual Revive revive() { return Revive::kFailed; }
  virtual bool revive_finish() { return false; }
  // Base delay before the first revival attempt (doubled per consecutive
  // failure by the scheduler).  0 = retry immediately.
  virtual int revive_delay_ms() const { return 0; }
};

// A source of workers of one kind.  start() is called once per
// DispatchCore::run to (re)create the lane's workers for the sweep;
// finish() reaps per-sweep workers (threads joined, children waited on) -
// a persistent lane (TCP) keeps its connections instead.
class Lane {
 public:
  virtual ~Lane() = default;

  virtual std::string name() const = 0;

  // Appends this lane's workers (owned by the lane, valid until finish())
  // to *out.  cell_count lets a lane clamp its worker count to the work
  // available; cell_fn is how thread/fork workers evaluate (captured for
  // the duration of the sweep - it must outlive finish()).
  //
  // eval_threads is the intra-cell thread budget each worker installs as
  // its ambient EvalContext before evaluating (the Monte-Carlo backend's
  // stream pool, core/eval_context.h).  0 = adaptive: a worker's budget
  // is its lane's configured parallelism divided by the workers actually
  // raised, so a 4-thread lane handed 1 cell gives that cell all 4
  // threads, and handed 8 cells gives each worker a budget of 1.  Remote
  // lanes (TCP/fleet) ignore it - each daemon owns its budget.
  virtual void start(std::size_t cell_count, const CellFn& cell_fn,
                     std::size_t eval_threads,
                     std::vector<LaneWorker*>* out) = 0;
  virtual void finish() = 0;
};

// --- ThreadLane -----------------------------------------------------------

// Worker threads inside the calling process.  Each worker owns one
// socketpair; the thread runs the same frame-serving loop as a forked
// child, so from the dispatch loop's point of view a thread is just a
// very reliable worker that can never crash independently.
class ThreadLane final : public Lane {
 public:
  // threads = 0 means std::thread::hardware_concurrency().
  explicit ThreadLane(std::size_t threads);
  ~ThreadLane() override;

  std::string name() const override { return "thread"; }
  std::size_t threads() const { return threads_; }

  void start(std::size_t cell_count, const CellFn& cell_fn,
             std::size_t eval_threads,
             std::vector<LaneWorker*>* out) override;
  void finish() override;

 private:
  struct Worker;

  std::size_t threads_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

// --- ForkLane -------------------------------------------------------------

// Forked worker processes fed cell batches over socketpairs.  A child
// that crashes (or is killed by a poisoned cell) is detected as EOF with
// work outstanding: the dispatch loop rolls its cells back to the queue
// and the lane respawns a replacement child, so the pool holds its size
// for the rest of the sweep - a cell that kills two workers in a row is
// declared poisonous and becomes a per-cell error instead of cascading.
class ForkLane final : public Lane {
 public:
  // workers = 0 means std::thread::hardware_concurrency().
  explicit ForkLane(std::size_t workers);
  ~ForkLane() override;

  std::string name() const override { return "fork"; }
  std::size_t workers() const { return count_; }

  void start(std::size_t cell_count, const CellFn& cell_fn,
             std::size_t eval_threads,
             std::vector<LaneWorker*>* out) override;
  void finish() override;

 private:
  struct Worker;

  // Forks a child serving `worker`'s socketpair; false if fork/socketpair
  // failed (the worker stays lost and is retried on the revive timer).
  bool spawn(Worker& worker);

  std::size_t count_;
  const CellFn* cell_fn_ = nullptr;  // valid between start() and finish()
  std::size_t worker_eval_threads_ = 1;  // per-child budget, set by start()
  std::vector<std::unique_ptr<Worker>> workers_;
};

// Hardware-concurrency default shared by the lanes and executors.
std::size_t default_parallelism();

}  // namespace rbx
