#include "core/executor.h"

#include <algorithm>
#include <stdexcept>

#include "core/dispatch.h"
#include "core/lane.h"
#include "support/check.h"

namespace rbx {

CellOutcome evaluate_cell(const CellFn& cell_fn, const Scenario& cell,
                          std::size_t index) {
  CellOutcome out;
  try {
    out.result = cell_fn(cell, index);
  } catch (const std::exception& e) {
    out.error = e.what();
    if (out.error.empty()) {
      out.error = "cell_fn threw an exception";
    }
  } catch (...) {
    out.error = "cell_fn threw a non-standard exception";
  }
  return out;
}

// --- InProcessExecutor ---------------------------------------------------
//
// A DispatchCore over one ThreadLane: no batching knobs, no stealing, no
// handshakes - the simplest lane configuration there is.

InProcessExecutor::InProcessExecutor(Options options)
    : threads_(options.threads) {
  if (threads_ == 0) {
    threads_ = default_parallelism();
  }
}

std::vector<CellOutcome> InProcessExecutor::run(
    const std::vector<Scenario>& cells, const CellFn& cell_fn) const {
  ThreadLane lane(threads_);
  DispatchCore core({&lane}, DispatchOptions());
  return core.run(cells, cell_fn);
}

// --- MultiProcessExecutor ------------------------------------------------
//
// A DispatchCore over one ForkLane: the shared scheduler brings adaptive
// batching, crash recovery with respawn, and (for HybridExecutor users)
// work stealing to forked workers for free.

MultiProcessExecutor::MultiProcessExecutor(Options options)
    : workers_(options.workers), batch_size_(options.batch_size) {
  if (workers_ == 0) {
    workers_ = default_parallelism();
  }
}

std::vector<CellOutcome> MultiProcessExecutor::run(
    const std::vector<Scenario>& cells, const CellFn& cell_fn) const {
  ForkLane lane(workers_);
  DispatchOptions options;
  options.batch_size = batch_size_;
  DispatchCore core({&lane}, options);
  return core.run(cells, cell_fn);
}

// --- batch payloads ------------------------------------------------------

void CellBatch::encode(wire::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(cells.size()));
  for (const BatchCell& cell : cells) {
    w.u64(cell.index);
    w.u8(cell.has_plan ? 1 : 0);
    if (cell.has_plan) {
      cell.plan.encode(w);
    }
    cell.scenario.encode(w);
  }
}

CellBatch CellBatch::decode(wire::Reader& r) {
  const std::uint32_t count = r.u32();
  // Each cell needs at least index + flag; a corrupt count fails here
  // instead of as a huge allocation.
  if (r.remaining() / 9 < count) {
    throw wire::Error("cell batch: truncated cell list (claims " +
                      std::to_string(count) + " cells, " +
                      std::to_string(r.remaining()) + " bytes left)");
  }
  CellBatch out;
  out.cells.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t index = r.u64();
    const std::uint8_t has_plan = r.u8();
    if (has_plan > 1) {
      throw wire::Error("cell batch: invalid plan flag");
    }
    EvalPlan plan;
    if (has_plan != 0) {
      plan = EvalPlan::decode(r);
    }
    Scenario scenario = Scenario::decode(r);
    out.cells.push_back(BatchCell{index, std::move(scenario), has_plan != 0,
                                  std::move(plan)});
  }
  return out;
}

std::vector<std::byte> CellBatch::seal() const {
  // Encode straight into the framed buffer (begin/end_frame patch the
  // length in place) - one buffer, no payload copy.
  wire::Writer w;
  const std::size_t mark = w.begin_frame(kFrameCellBatch);
  encode(w);
  w.end_frame(mark);
  return w.take();
}

void ResultBatch::encode(wire::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const Entry& entry : entries) {
    w.u64(entry.index);
    w.u8(entry.outcome.ok() ? 1 : 0);
    if (entry.outcome.ok()) {
      entry.outcome.result.encode(w);
    } else {
      w.str(entry.outcome.error);
    }
  }
}

ResultBatch ResultBatch::decode(wire::Reader& r) {
  const std::uint32_t count = r.u32();
  if (r.remaining() / 9 < count) {
    throw wire::Error("result batch: truncated entry list (claims " +
                      std::to_string(count) + " entries, " +
                      std::to_string(r.remaining()) + " bytes left)");
  }
  ResultBatch out;
  out.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry entry;
    entry.index = r.u64();
    const std::uint8_t ok = r.u8();
    if (ok > 1) {
      throw wire::Error("result batch: invalid outcome flag");
    }
    if (ok != 0) {
      entry.outcome.result = ResultSet::decode(r);
    } else {
      entry.outcome.error = r.str();
      if (entry.outcome.error.empty()) {
        // An empty error string would read as success (CellOutcome::ok).
        entry.outcome.error = "worker reported an unnamed failure";
      }
    }
    out.entries.push_back(std::move(entry));
  }
  return out;
}

std::vector<std::byte> ResultBatch::seal() const {
  wire::Writer w;
  const std::size_t mark = w.begin_frame(kFrameResultBatch);
  encode(w);
  w.end_frame(mark);
  return w.take();
}

std::size_t apply_result_batch(const ResultBatch& batch,
                               const std::vector<std::size_t>& outstanding,
                               std::vector<CellOutcome>& outcomes,
                               std::vector<std::uint8_t>* committed) {
  // Validate the entire batch before writing anything.  Under a
  // committed mask a write is *final* - the cluster's lose() path will
  // never re-queue a committed cell - so a batch that turns out to
  // violate the protocol must fail atomically: none of a provably
  // misbehaving worker's answers can be trusted, and failing the whole
  // batch re-runs all of its cells on a healthy worker.
  std::vector<bool> answered(outstanding.size(), false);
  for (const ResultBatch::Entry& entry : batch.entries) {
    const std::size_t index = static_cast<std::size_t>(entry.index);
    std::size_t slot = outstanding.size();
    for (std::size_t b = 0; b < outstanding.size(); ++b) {
      if (outstanding[b] == index && !answered[b]) {
        slot = b;
        break;
      }
    }
    if (slot == outstanding.size()) {
      throw wire::Error("worker answered cell " + std::to_string(index) +
                        " which is not in its batch");
    }
    answered[slot] = true;
  }
  for (std::size_t b = 0; b < answered.size(); ++b) {
    if (!answered[b]) {
      throw wire::Error("worker response is missing cell " +
                        std::to_string(outstanding[b]));
    }
  }
  std::size_t newly = 0;
  for (const ResultBatch::Entry& entry : batch.entries) {
    const std::size_t index = static_cast<std::size_t>(entry.index);
    if (committed != nullptr) {
      if ((*committed)[index] != 0) {
        continue;  // late duplicate: another worker's answer already won
      }
      (*committed)[index] = 1;
    }
    outcomes[index] = entry.outcome;
    ++newly;
  }
  return newly;
}

// --- sharding ------------------------------------------------------------

std::vector<std::size_t> shard_cell_indices(std::size_t total_cells,
                                            const ShardSpec& spec) {
  RBX_CHECK_MSG(spec.count >= 1, "shard count must be >= 1");
  RBX_CHECK_MSG(spec.index < spec.count, "shard index must be < count");
  std::vector<std::size_t> owned;
  for (std::size_t i = spec.index; i < total_cells; i += spec.count) {
    owned.push_back(i);
  }
  return owned;
}

std::uint64_t grid_fingerprint(const std::vector<Scenario>& cells) {
  wire::Writer w;
  w.u64(cells.size());
  for (const Scenario& cell : cells) {
    cell.encode(w);
  }
  // FNV-1a over the grid's wire form (endian-stable, so the fingerprint
  // matches across hosts).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : w.data()) {
    h ^= static_cast<std::uint8_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void ShardPartial::encode(wire::Writer& w) const {
  w.u64(shard.index);
  w.u64(shard.count);
  w.u64(total_cells);
  w.u64(fingerprint);
  w.u32(static_cast<std::uint32_t>(results.size()));
  for (const auto& [index, result] : results) {
    w.u64(index);
    result.encode(w);
  }
}

ShardPartial ShardPartial::decode(wire::Reader& r) {
  ShardPartial out;
  out.shard.index = static_cast<std::size_t>(r.u64());
  out.shard.count = static_cast<std::size_t>(r.u64());
  out.total_cells = static_cast<std::size_t>(r.u64());
  out.fingerprint = r.u64();
  if (out.shard.count == 0 || out.shard.index >= out.shard.count) {
    throw wire::Error("shard partial: invalid shard spec");
  }
  const std::uint32_t count = r.u32();
  if (r.remaining() / 8 < count) {
    throw wire::Error("shard partial: truncated result list");
  }
  // The result count determines what total_cells can honestly be: this
  // shard owns exactly ceil((total - index) / count_shards) cells.  A
  // corrupt total_cells field must fail here, not as a huge allocation
  // in merge_shard_partials.
  const std::size_t expected_owned =
      out.total_cells > out.shard.index
          ? (out.total_cells - out.shard.index - 1) / out.shard.count + 1
          : 0;
  if (count != expected_owned) {
    throw wire::Error("shard partial: " + std::to_string(count) +
                      " results do not match the declared grid of " +
                      std::to_string(out.total_cells) + " cells");
  }
  out.results.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t index = static_cast<std::size_t>(r.u64());
    if (index >= out.total_cells || !out.shard.owns(index)) {
      throw wire::Error("shard partial: cell " + std::to_string(index) +
                        " does not belong to this shard");
    }
    out.results.emplace_back(index, ResultSet::decode(r));
  }
  return out;
}

PartialMerger::PartialMerger(std::size_t total_cells,
                             std::size_t shard_count,
                             std::uint64_t fingerprint)
    : shard_count_(shard_count),
      fingerprint_(fingerprint),
      shard_seen_(shard_count, false),
      cell_seen_(total_cells, false),
      results_(total_cells) {
  if (shard_count == 0) {
    throw wire::Error("shard merge: shard count must be >= 1");
  }
}

void PartialMerger::apply(const ShardPartial& partial) {
  if (partial.shard.count != shard_count_ ||
      partial.total_cells != cell_seen_.size()) {
    throw wire::Error(
        "shard merge: partials disagree on the grid split (different "
        "shard count or cell total)");
  }
  if (partial.fingerprint != fingerprint_) {
    throw wire::Error(
        "shard merge: partials were produced from different grids "
        "(fingerprint mismatch - different --samples/--seed/options?)");
  }
  if (partial.shard.index >= shard_count_) {
    throw wire::Error("shard merge: invalid shard index " +
                      std::to_string(partial.shard.index));
  }
  if (shard_seen_[partial.shard.index]) {
    throw wire::Error("shard merge: shard " +
                      std::to_string(partial.shard.index) +
                      " appears twice");
  }
  // Validate before mutating, so a rejected partial leaves the merger
  // usable (a streaming caller may want to keep going without it).
  std::vector<std::size_t> indices;
  indices.reserve(partial.results.size());
  for (const auto& [index, result] : partial.results) {
    if (index >= cell_seen_.size() || !partial.shard.owns(index)) {
      throw wire::Error("shard merge: cell " + std::to_string(index) +
                        " does not belong to shard " +
                        std::to_string(partial.shard.index));
    }
    if (cell_seen_[index]) {
      throw wire::Error("shard merge: cell " + std::to_string(index) +
                        " appears twice");
    }
    indices.push_back(index);
  }
  std::vector<std::size_t> sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t k = 1; k < sorted.size(); ++k) {
    if (sorted[k] == sorted[k - 1]) {
      throw wire::Error("shard merge: cell " + std::to_string(sorted[k]) +
                        " appears twice");
    }
  }
  shard_seen_[partial.shard.index] = true;
  ++shards_applied_;
  for (const auto& [index, result] : partial.results) {
    cell_seen_[index] = true;
    results_[index] = result;
    ++cells_applied_;
  }
}

std::vector<ResultSet> PartialMerger::take() {
  for (std::size_t i = 0; i < cell_seen_.size(); ++i) {
    if (!cell_seen_[i]) {
      throw wire::Error("shard merge: cell " + std::to_string(i) +
                        " is missing from every partial");
    }
  }
  cell_seen_.clear();
  shard_seen_.clear();
  shards_applied_ = 0;
  cells_applied_ = 0;
  return std::move(results_);
}

std::vector<ResultSet> merge_shard_partials(
    const std::vector<ShardPartial>& partials) {
  if (partials.empty()) {
    throw wire::Error("shard merge: no partials given");
  }
  const std::size_t count = partials.front().shard.count;
  if (partials.size() != count) {
    throw wire::Error("shard merge: expected " + std::to_string(count) +
                      " partials (one per shard), got " +
                      std::to_string(partials.size()));
  }
  PartialMerger merger(partials.front().total_cells, count,
                       partials.front().fingerprint);
  for (const ShardPartial& partial : partials) {
    merger.apply(partial);
  }
  return merger.take();
}

}  // namespace rbx
