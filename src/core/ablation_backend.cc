#include "core/ablation_backend.h"

#include <string>

#include "des/async_sim.h"
#include "des/prp_sim.h"
#include "model/async_model.h"
#include "model/async_symmetric.h"
#include "model/prp_model.h"
#include "model/sync_model.h"
#include "support/check.h"
#include "support/stats.h"

namespace rbx {

namespace {

void set_sample(ResultSet& out, const std::string& name, const SampleSet& s) {
  out.set(name, s.mean(), s.ci_half_width(), s.count());
}

}  // namespace

bool ExactLineBackend::supports(const Scenario& scenario) const {
  // The exact observer is defined on the asynchronous event stream; the
  // paired analytic column needs the lumped chain, hence homogeneous
  // rates.
  return scenario.scheme() == SchemeKind::kAsynchronous &&
         scenario.params().is_symmetric_rates() && scenario.n() >= 2;
}

ResultSet ExactLineBackend::evaluate(const Scenario& scenario) const {
  RBX_CHECK_MSG(supports(scenario),
                "line-exact needs an asynchronous scenario with "
                "homogeneous rates and n >= 2");
  ResultSet out(name(), scenario.label());
  const ProcessSetParams& p = scenario.params();

  // The lumped chain is the model whose all-ones criterion the exact
  // observer is compared against; its E[X] is computed here (not promoted
  // from the analytic backend) so the paired column uses exactly the
  // lumped solve even where the full chain would be available.
  SymmetricAsyncModel model(p.n(), p.mu(0), p.lambda(0, 1));
  out.set("model_interval_analytic", model.mean_interval());

  AsyncRbSimulator sim(p, scenario.seed());
  const ExactLineResult r = sim.run_exact(scenario.samples());
  set_sample(out, "model_interval", r.model_interval);
  set_sample(out, "any_advance", r.any_advance);
  set_sample(out, "full_refresh", r.full_refresh);
  const double ratio =
      r.any_advance.count() > 0
          ? r.model_interval.mean() / r.any_advance.mean()
          : 0.0;
  out.set("line_conservatism", ratio);
  return out;
}

bool HybridSchemeBackend::supports(const Scenario& scenario) const {
  // The hybrid cap only exists with a sync period; the PRP simulator runs
  // until a failure count is reached, so errors must be injected.
  return scenario.scheme() == SchemeKind::kPseudoRecoveryPoints &&
         scenario.prp_sync_period() > 0.0 && scenario.error_rate() > 0.0;
}

ResultSet HybridSchemeBackend::evaluate(const Scenario& scenario) const {
  RBX_CHECK_MSG(supports(scenario),
                "hybrid needs a PRP scenario with prp_sync_period > 0 and "
                "a positive error rate");
  ResultSet out(name(), scenario.label());
  const ProcessSetParams& p = scenario.params();

  // The analytic header quantities of the trade-off: what pure async,
  // pure PRP and pure synchronization would each cost at these rates.
  AsyncRbModel async(p);
  SyncRbModel sync(p.mu());
  PrpModel prp(p, scenario.t_record());
  out.set("async_mean_interval", async.mean_interval());
  out.set("async_mean_line_age", async.mean_line_age());
  out.set("prp_mean_rollback_bound", prp.mean_rollback_bound());
  out.set("sync_commit_loss", sync.mean_loss());

  PrpSimulator sim(p, scenario.prp_sim_params(), scenario.seed());
  const PrpSimResult r = sim.run(scenario.samples());
  set_sample(out, "hybrid_distance", r.hybrid_distance);
  out.set("hybrid_distance_p95", r.hybrid_distance.quantile(0.95));
  out.set("hybrid_distance_max", r.hybrid_distance.max());
  out.set("hybrid_sync_restores",
          static_cast<double>(r.hybrid_sync_restores));
  out.set("failures", static_cast<double>(r.failures));
  out.set("sync_lines_established",
          static_cast<double>(r.sync_lines_established));
  // Steady-state loss of the periodic synchronization component: lines
  // established per unit time, each costing CL in computation power.
  const double loss_rate =
      static_cast<double>(r.sync_lines_established) / r.horizon *
      sync.mean_loss();
  out.set("hybrid_sync_loss_rate", loss_rate);
  set_sample(out, "prp_distance", r.prp_distance);
  out.set("prp_distance_max", r.prp_distance.max());
  out.set("horizon", r.horizon);
  return out;
}

}  // namespace rbx
