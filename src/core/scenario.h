// Scenario: the single configuration artifact of the library.
//
// A Scenario is a value type describing one experiment on a set of
// cooperating concurrent processes: the stochastic rates of the paper's
// Section 2.1 model (ProcessSetParams), which recovery scheme is under
// study (SchemeKind), the fault-injection knobs, the Monte-Carlo budget and
// the thread-runtime workload shape.  The same Scenario can be handed to
// any EvalBackend - the analytic Markov models, the discrete-event
// simulators or the real checkpoint/rollback runtime - which is what lets
// one experiment definition be cross-validated across all three semantics
// (see core/backend.h).
//
// Scenarios are cheap to copy; the fluent setters return *this so sweep
// code can derive cells from a base scenario in one expression:
//
//   Scenario base = Scenario::symmetric(3, 1.0, 1.0)
//                       .scheme(SchemeKind::kAsynchronous)
//                       .samples(20000);
//   Scenario cell = Scenario(base).seed(derive_cell_seed(master, i));
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "des/sync_sim.h"     // SyncStrategy, SyncSimParams
#include "des/prp_sim.h"      // PrpSimParams
#include "model/params.h"
#include "runtime/system.h"   // SchemeKind, RuntimeConfig
#include "support/wire.h"

namespace rbx {

// How the synchronized scheme decides when to request a recovery line
// (paper Section 3's three strategies); consumed by the Monte-Carlo
// backend's commit simulator.
struct SyncPolicy {
  SyncStrategy strategy = SyncStrategy::kElapsedTime;
  double interval = 1.0;            // kConstantInterval: timer period
  double elapsed_threshold = 1.0;   // kElapsedTime: max line age
  std::size_t saved_threshold = 8;  // kSavedStates: states before request
};

// Workload shape for the thread runtime (step units rather than model
// time; see runtime/system.h for the field semantics).
struct RuntimeWorkload {
  std::size_t steps = 400;
  double message_probability = 0.25;
  double rp_probability = 0.08;
  double alternate_failure_probability = 0.0;
  std::size_t rb_alternates = 2;
  std::size_t sync_period_steps = 50;
};

class Scenario {
 public:
  explicit Scenario(ProcessSetParams params);

  // Homogeneous system: n processes, RP rate mu, pairwise rate lambda.
  static Scenario symmetric(std::size_t n, double mu, double lambda);
  // Processes with given RP rates and no interprocess communication
  // (lambda = 0); all the synchronized-scheme analysis needs.
  static Scenario from_mu(std::vector<double> mu);

  // --- process set ---
  const ProcessSetParams& params() const { return params_; }
  Scenario& params(ProcessSetParams p);
  std::size_t n() const { return params_.n(); }

  // --- scheme selection ---
  SchemeKind scheme() const { return scheme_; }
  Scenario& scheme(SchemeKind s);

  // --- determinism ---
  std::uint64_t seed() const { return seed_; }
  Scenario& seed(std::uint64_t s);

  // --- fault injection ---
  // System-wide Poisson error rate in model time (DES backends).
  double error_rate() const { return error_rate_; }
  Scenario& error_rate(double rate);
  // Probability that an acceptance test fails (thread runtime).
  double at_failure_probability() const { return at_failure_probability_; }
  Scenario& at_failure_probability(double p);

  // --- scheme knobs ---
  // State-recording time t_r of the PRP scheme (paper Section 4).
  double t_record() const { return t_record_; }
  Scenario& t_record(double t);
  const SyncPolicy& sync_policy() const { return sync_policy_; }
  Scenario& sync_policy(SyncPolicy policy);
  bool scoped_prp() const { return scoped_prp_; }
  Scenario& scoped_prp(bool scoped);
  // Hybrid PRP + periodic synchronized lines (0 = off).
  double prp_sync_period() const { return prp_sync_period_; }
  Scenario& prp_sync_period(double period);

  // --- workload ---
  // Monte-Carlo budget: recovery lines (async), synchronizations (sync)
  // or detected failures (PRP).
  std::size_t samples() const { return samples_; }
  Scenario& samples(std::size_t s);
  // Independent RNG sub-streams the Monte-Carlo budget is partitioned
  // into (core/monte_carlo_backend.cc).  Each stream k simulates its
  // share of samples() under derive_stream_seed(seed(), k) and the
  // partial results merge in fixed stream order, so the result depends
  // only on (scenario, streams) - never on how many threads evaluated
  // the streams.  streams() == 1 (the default) is the exact pre-stream
  // sequential path, bitwise identical to earlier releases.
  std::size_t streams() const { return streams_; }
  Scenario& streams(std::size_t k);
  const RuntimeWorkload& workload() const { return workload_; }
  Scenario& workload(RuntimeWorkload w);

  // Stable human-readable identifier, e.g.
  // "async n=3 rho=1 seed=42"; used as the ResultSet scenario label.
  std::string label() const;

  // --- wire form ---
  // Exact binary round-trip (support/wire.h): every knob, rates and seed,
  // with all doubles bit-preserved - the form the sweep executors ship to
  // worker processes and shard runs exchange between hosts.  decode throws
  // wire::Error on truncated data or out-of-range enum/rate values.
  void encode(wire::Writer& w) const;
  static Scenario decode(wire::Reader& r);

  // --- projections onto the pre-existing entry points ---
  RuntimeConfig runtime_config() const;
  SyncSimParams sync_sim_params() const;
  // RBX_CHECKs error_rate > 0: the PRP simulator runs until a failure
  // count is reached and would never terminate without injected errors.
  PrpSimParams prp_sim_params() const;

 private:
  ProcessSetParams params_;
  SchemeKind scheme_ = SchemeKind::kAsynchronous;
  std::uint64_t seed_ = 20260610;
  double error_rate_ = 0.0;
  double at_failure_probability_ = 0.0;
  double t_record_ = 0.01;
  SyncPolicy sync_policy_;
  bool scoped_prp_ = false;
  double prp_sync_period_ = 0.0;
  std::size_t samples_ = 20000;
  std::size_t streams_ = 1;
  RuntimeWorkload workload_;
};

}  // namespace rbx
