#include "core/analyzer.h"

#include <cmath>
#include <sstream>

#include "model/async_model.h"
#include "model/prp_model.h"
#include "model/sync_model.h"

namespace rbx {

std::string SchemeComparison::summary() const {
  std::ostringstream os;
  os << "asynchronous : E[X] = " << mean_interval_x
     << " (sd " << stddev_interval_x << "), E[L] =";
  for (double l : rp_counts) {
    os << ' ' << l;
  }
  os << '\n';
  os << "synchronized : E[Z] = " << sync_mean_max_wait
     << ", loss CL = " << sync_mean_loss << '\n';
  os << "pseudo RPs   : " << prp_snapshots_per_rp
     << " states/RP, +" << prp_time_overhead_per_rp
     << " time/RP, rollback bound E[sup y] = " << prp_mean_rollback_bound;
  return os.str();
}

Analyzer::Analyzer(ProcessSetParams params, double t_record)
    : params_(std::move(params)), t_record_(t_record) {}

SchemeComparison Analyzer::compare() const {
  SchemeComparison out;

  AsyncRbModel async(params_);
  out.mean_interval_x = async.mean_interval();
  out.stddev_interval_x = std::sqrt(async.variance_interval());
  out.rp_counts.reserve(params_.n());
  for (std::size_t i = 0; i < params_.n(); ++i) {
    out.rp_counts.push_back(async.expected_rp_count(i).wald);
  }

  SyncRbModel sync(params_.mu());
  out.sync_mean_max_wait = sync.mean_max_wait();
  out.sync_mean_loss = sync.mean_loss();

  PrpModel prp(params_, t_record_);
  out.prp_snapshots_per_rp = static_cast<double>(prp.snapshots_per_rp());
  out.prp_time_overhead_per_rp = prp.time_overhead_per_rp();
  out.prp_mean_rollback_bound = prp.mean_rollback_bound();
  return out;
}

std::vector<double> Analyzer::interval_density_grid(double t_max,
                                                    std::size_t points) const {
  AsyncRbModel async(params_);
  return async.interval().pdf_grid(t_max, points);
}

}  // namespace rbx
