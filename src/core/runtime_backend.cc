#include "core/runtime_backend.h"

#include "runtime/system.h"

namespace rbx {

ResultSet RuntimeBackend::evaluate(const Scenario& scenario) const {
  RecoverySystem system(scenario.runtime_config());
  const RuntimeReport r = system.run();

  ResultSet out(name(), scenario.label());
  const auto count = [&out](const char* name, std::size_t v) {
    out.set(name, static_cast<double>(v));
  };
  count("messages_sent", r.messages_sent);
  count("messages_applied", r.messages_applied);
  count("fifo_violations", r.fifo_violations);
  count("rps", r.rps);
  count("prps", r.prps);
  count("implant_commits", r.implant_commits);
  count("snapshots_retained", r.snapshots_retained);
  count("snapshot_bytes", r.snapshot_bytes);
  count("purged_snapshots", r.purged_snapshots);
  count("rb_executions", r.rb_executions);
  count("rb_local_rollbacks", r.rb_local_rollbacks);
  count("at_failures", r.at_failures);
  count("recoveries", r.recoveries);
  count("orphan_messages_dropped", r.orphan_messages_dropped);
  count("domino_restarts", r.domino_restarts);
  out.set("rollback_depth", r.rollback_tickets.mean(),
          r.rollback_tickets.ci_half_width(), r.rollback_tickets.count());
  out.set("affected_processes", r.affected_processes.mean(),
          r.affected_processes.ci_half_width(), r.affected_processes.count());
  count("sync_lines", r.sync_lines);
  count("sync_aborts", r.sync_aborts);
  out.set("sync_wait_polls", r.sync_wait_polls.mean(),
          r.sync_wait_polls.ci_half_width(), r.sync_wait_polls.count());
  out.set("sync_wait_polls_max",
          r.sync_wait_polls.count() > 0 ? r.sync_wait_polls.max() : 0.0);
  out.set("line_consistency_verified", r.line_consistency_verified ? 1.0 : 0.0);
  out.set("restore_verified", r.restore_verified ? 1.0 : 0.0);
  out.set("completed", r.completed ? 1.0 : 0.0);
  return out;
}

}  // namespace rbx
