// EvalBackend: one interface over the library's three evaluation semantics.
//
// The paper validates every claim three ways - closed-form/Markov analysis,
// Monte-Carlo simulation of the Section 2.1 stochastic process, and a real
// thread runtime with checkpoint/rollback.  Each of those lives in its own
// layer (model/+markov/, des/, runtime/); EvalBackend is the seam that lets
// a single Scenario flow through any of them and come back as a ResultSet
// of named metrics:
//
//   const Scenario s = Scenario::symmetric(3, 1.0, 1.0);
//   for (const EvalBackend* b : all_backends()) {
//     ResultSet r = b->evaluate(s);
//     ...
//   }
//
// Backends share metric names where the semantics coincide (e.g.
// "mean_interval_x" is the analytic E[X] from the phase-type chain and the
// sample mean from the DES), so cross-backend validation is a join on
// metric name instead of per-experiment glue.  The registered backends are
// stateless singletons; evaluate() is const and safe to call concurrently
// from SweepEngine worker threads.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/result.h"
#include "core/scenario.h"
#include "support/wire.h"

namespace rbx {

class EvalBackend {
 public:
  virtual ~EvalBackend() = default;

  virtual std::string name() const = 0;

  // Whether this backend can evaluate the scenario (e.g. the full analytic
  // chain has 2^n + 1 states and caps n; the PRP simulator needs a
  // positive error rate).  evaluate() RBX_CHECKs the same conditions, so
  // misuse is loud either way.
  virtual bool supports(const Scenario& scenario) const;

  virtual ResultSet evaluate(const Scenario& scenario) const = 0;
};

// The standard backends (stateless singletons).
const EvalBackend& analytic_backend();      // model/ + markov/
const EvalBackend& monte_carlo_backend();   // des/
const EvalBackend& runtime_backend();       // runtime/ (real threads)
// The Figure 6 density grid, analytically and by simulation
// (core/density_backend.h).
const EvalBackend& density_analytic_backend();
const EvalBackend& density_monte_carlo_backend();
// The ablation evaluations (core/ablation_backend.h): the exact pairwise
// recovery-line comparison and the hybrid PRP + periodic-sync scheme.
const EvalBackend& exact_line_backend();
const EvalBackend& hybrid_scheme_backend();
// Markov chain-structure inventories (core/structure_backend.h).
const EvalBackend& markov_structure_backend();
// The Markov-engine timing kernels (perf/micro_backend.h).
const EvalBackend& markov_micro_backend();

// All registered backends, in the order above.
std::vector<const EvalBackend*> all_backends();

// Lookup by name ("analytic", "monte-carlo", "runtime",
// "density-analytic", "density-mc", "line-exact", "hybrid",
// "markov-structure", "micro-markov"); nullptr if unknown.
const EvalBackend* find_backend(const std::string& name);

// --- evaluation plans ----------------------------------------------------
//
// A serializable recipe for evaluating one sweep cell.  The bench lambdas
// all have the same shape - evaluate one backend, then merge() further
// backends under a metric prefix - and an EvalPlan is that shape as data,
// so a cell can be shipped to a worker daemon on another host
// (net/cluster.h) that has no access to the bench's closures.  Executing a
// plan locally and remotely calls the same backend singletons in the same
// order, which is what keeps cluster runs byte-identical to in-process
// runs.

struct EvalStep {
  std::string backend;  // registered backend name (find_backend)
  std::string prefix;   // merge() prefix; ignored for the first step
};

struct EvalPlan {
  std::vector<EvalStep> steps;  // at least one to be executable

  void encode(wire::Writer& w) const;
  // Throws wire::Error on malformed data (including an empty or
  // absurdly long step list).
  static EvalPlan decode(wire::Reader& r);
};

// Convenience: the one-step plan "evaluate on this backend".
EvalPlan plan_for(const EvalBackend& backend);

// Executes the plan: steps[0].backend evaluates the scenario, every later
// step merges its backend's evaluation under step.prefix.  Throws
// std::runtime_error for an empty plan or an unknown backend name.
ResultSet evaluate_plan(const EvalPlan& plan, const Scenario& scenario);

// How a sweep describes per-cell evaluation so it can run on any executor,
// including remote cluster workers; the index is the cell's position in
// the expanded grid (some benches vary the plan along the grid).
using PlanFn = std::function<EvalPlan(const Scenario&, std::size_t)>;

}  // namespace rbx
