#include "core/analytic_backend.h"

#include <cmath>
#include <functional>
#include <string>

#include "model/async_model.h"
#include "model/async_symmetric.h"
#include "model/prp_model.h"
#include "model/sync_model.h"
#include "support/check.h"

namespace rbx {

namespace {

// Largest n for which the full 2^n + 1 state chain is built (matches the
// AsyncRbModel cap).
constexpr std::size_t kFullChainMaxN = 12;
// For homogeneous rates the lumped R1'-R4' chain is an exact lumping of the
// full model (pinned state-by-state in tests/model/async_symmetric_test.cc),
// so above this n the O(8^n) full chain adds nothing over the O(n^3) lumped
// solve and is skipped.
constexpr std::size_t kFullChainSymmetricMaxN = 7;

void evaluate_async(const Scenario& s, ResultSet& out) {
  const ProcessSetParams& p = s.params();
  const std::size_t n = p.n();
  const bool lumped_exact = p.is_symmetric_rates() && n >= 2;
  RBX_CHECK_MSG(n <= kFullChainMaxN || p.is_symmetric_rates(),
                "async analytic model needs n <= 12 or homogeneous rates");
  const bool full_chain =
      n <= (lumped_exact ? kFullChainSymmetricMaxN : kFullChainMaxN);
  // Marker for consumers that must distinguish full-chain numbers from
  // promoted lumped ones (e.g. fig5's cross-check column).
  out.set("async_full_chain", full_chain ? 1.0 : 0.0);
  if (full_chain) {
    AsyncRbModel model(p);
    out.set("mean_interval_x", model.mean_interval());
    out.set("variance_interval_x", model.variance_interval());
    out.set("stddev_interval_x", std::sqrt(model.variance_interval()));
    out.set("mean_line_age", model.mean_line_age());
    for (std::size_t i = 0; i < n; ++i) {
      const AsyncRbModel::RpCounts counts = model.expected_rp_count(i);
      out.set(indexed_metric("rp_count_", i), counts.wald);
      out.set(indexed_metric("rp_count_excl_", i), counts.excluding_final);
      out.set(indexed_metric("rp_count_statechg_", i), counts.state_changing);
    }
  }
  if (lumped_exact) {
    SymmetricAsyncModel lumped(n, p.mu(0), p.lambda(0, 1));
    out.set("mean_interval_x_lumped", lumped.mean_interval());
    out.set("variance_interval_x_lumped", lumped.variance_interval());
    out.set("stddev_interval_x_lumped",
            std::sqrt(lumped.variance_interval()));
    out.set("mean_line_age_lumped", lumped.mean_line_age());
    out.set("rp_count_lumped", lumped.expected_rp_count_wald());
    if (!full_chain) {
      // The lumped chain is the exact model here; promote its numbers to
      // the shared metric names so cross-backend joins keep working.
      out.set("mean_interval_x", lumped.mean_interval());
      out.set("variance_interval_x", lumped.variance_interval());
      out.set("stddev_interval_x", std::sqrt(lumped.variance_interval()));
      out.set("mean_line_age", lumped.mean_line_age());
      for (std::size_t i = 0; i < n; ++i) {
        out.set(indexed_metric("rp_count_", i),
                lumped.expected_rp_count_wald());
      }
    }
  }
}

void evaluate_sync(const Scenario& s, ResultSet& out) {
  SyncRbModel model(s.params().mu());
  out.set("sync_mean_max_wait", model.mean_max_wait());
  out.set("sync_mean_max_wait_quadrature", model.mean_max_wait_quadrature());
  out.set("sync_mean_loss", model.mean_loss());
  for (std::size_t i = 0; i < model.n(); ++i) {
    out.set(indexed_metric("sync_mean_wait_", i), model.mean_wait(i));
  }
}

void evaluate_prp(const Scenario& s, ResultSet& out) {
  PrpModel model(s.params(), s.t_record());
  out.set("prp_snapshots_per_rp",
          static_cast<double>(model.snapshots_per_rp()));
  out.set("prp_time_overhead_per_rp", model.time_overhead_per_rp());
  out.set("prp_snapshot_rate", model.snapshot_rate(0));
  out.set("prp_system_snapshot_rate", model.system_snapshot_rate());
  out.set("prp_retained_snapshots_per_process",
          static_cast<double>(model.retained_snapshots_per_process()));
  out.set("prp_mean_rollback_bound", model.mean_rollback_bound());
  for (std::size_t i = 0; i < model.n(); ++i) {
    out.set(indexed_metric("prp_recording_fraction_", i),
            model.recording_fraction(i));
    out.set(indexed_metric("prp_mean_local_rollback_", i),
            model.mean_local_rollback(i));
  }
}

// The exact scenario inputs the evaluators above read: scheme, rates and
// t_record.  Everything else (seed, samples, label, workload, sync policy)
// is ignored by the analytic path, so it must stay out of the key -
// including it would only split identical solutions across entries.
std::string model_cache_key(const Scenario& s) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(s.scheme()));
  w.f64_vec(s.params().mu());
  w.f64_vec(s.params().lambda_flat());
  w.f64(s.t_record());
  const std::vector<std::byte>& bytes = w.data();
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

void evaluate_scheme(const Scenario& scenario, ResultSet& out) {
  switch (scenario.scheme()) {
    case SchemeKind::kAsynchronous:
      evaluate_async(scenario, out);
      break;
    case SchemeKind::kSynchronized:
      evaluate_sync(scenario, out);
      break;
    case SchemeKind::kPseudoRecoveryPoints:
      evaluate_prp(scenario, out);
      break;
  }
}

}  // namespace

bool AnalyticBackend::supports(const Scenario& scenario) const {
  if (scenario.scheme() == SchemeKind::kAsynchronous) {
    return scenario.n() <= kFullChainMaxN ||
           scenario.params().is_symmetric_rates();
  }
  return true;
}

AnalyticBackend::CacheShard& AnalyticBackend::shard_for(
    const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % kCacheShards];
}

ResultSet AnalyticBackend::evaluate(const Scenario& scenario) const {
  if (!cache_models_) {
    ResultSet out(name(), scenario.label());
    evaluate_scheme(scenario, out);
    return out;
  }

  const std::string key = model_cache_key(scenario);
  CacheShard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      // Replay in insertion order with the doubles untouched: bitwise
      // identical to the evaluation that populated the entry.
      ResultSet out(name(), scenario.label());
      for (const Metric& m : it->second) {
        out.set(m.name, m.value, m.half_width, m.count);
      }
      return out;
    }
  }

  // Solve outside the lock: concurrent sweep threads racing on the same
  // key duplicate work once, but the entries they store are identical.
  ResultSet out(name(), scenario.label());
  evaluate_scheme(scenario, out);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.entries.size() >= kMaxCachedModels / kCacheShards) {
      shard.entries.clear();
    }
    shard.entries.emplace(key, out.metrics());
  }
  return out;
}

std::size_t AnalyticBackend::cached_models() const {
  std::size_t total = 0;
  for (CacheShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace rbx
