// Ambient per-thread evaluation context.
//
// Backends are stateless singletons (core/backend.h), so an execution
// knob like "how many intra-cell threads may this evaluation use" cannot
// live on the backend, and threading it through every evaluate() call
// would churn the EvalBackend interface for what is purely a runtime
// resource hint.  Instead the dispatch layer installs an EvalContext on
// the worker thread before invoking the backend, and the backend reads
// it ambiently.
//
// The context is a *budget*, never semantics: a backend must produce
// bitwise-identical results for any thread_budget (the Monte-Carlo
// backend partitions work by RNG sub-stream, not by thread; see
// core/monte_carlo_backend.cc).  The default context has a budget of 1,
// so code that never installs a scope gets sequential evaluation.
#pragma once

#include <cstddef>

namespace rbx {

struct EvalContext {
  // Maximum number of threads one cell evaluation may use.  1 means
  // fully sequential; the Monte-Carlo backend spawns at most
  // min(streams, thread_budget) workers.
  std::size_t thread_budget = 1;
};

// The context installed on the calling thread (default-constructed if no
// EvalContextScope is active).
const EvalContext& current_eval_context();

// RAII installer: replaces the calling thread's context for the scope's
// lifetime and restores the previous one on destruction.  Scopes nest.
class EvalContextScope {
 public:
  explicit EvalContextScope(EvalContext ctx);
  ~EvalContextScope();

  EvalContextScope(const EvalContextScope&) = delete;
  EvalContextScope& operator=(const EvalContextScope&) = delete;

 private:
  EvalContext previous_;
};

}  // namespace rbx
