// Thread-runtime evaluation of a Scenario via runtime/RecoverySystem.
//
// Projects the scenario onto a RuntimeConfig (scheme, seed, fault
// injection, workload shape) and runs the real checkpoint/rollback runtime:
// n std::jthread processes exchanging messages, establishing recovery
// points and recovering from injected acceptance-test failures.  The
// report's protocol counters come back as metrics ("recoveries",
// "rollback_depth", "affected_processes", "snapshot_bytes", ...) plus the
// verified invariants ("line_consistency_verified", "restore_verified",
// "completed") as 0/1 values.
//
// Unlike the other two backends this one is subject to real thread
// scheduling: counters vary from run to run even with a fixed seed, so it
// validates protocol behaviour and invariants, not exact numbers.
#pragma once

#include "core/backend.h"

namespace rbx {

class RuntimeBackend : public EvalBackend {
 public:
  std::string name() const override { return "runtime"; }
  ResultSet evaluate(const Scenario& scenario) const override;
};

}  // namespace rbx
