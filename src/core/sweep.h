// SweepEngine: parameter-grid expansion and parallel scenario evaluation.
//
// Every bench in this repository is a sweep: vary (n, rho, failure rate,
// scheme, ...) over a grid, evaluate each cell, print a table.  SweepGrid
// expands a base Scenario and a list of axes into the cartesian product of
// cells; SweepEngine evaluates a cell batch on a thread pool.  Two
// properties make the results independent of the thread count:
//
//  * per-cell seeds are derived deterministically from the master seed and
//    the cell index (derive_cell_seed, a splitmix64 output - cells get
//    decorrelated streams and cell i's seed never depends on how many
//    cells or threads there are);
//  * cells are evaluated independently (the backends are stateless) and
//    results land in input order.
//
// So `engine.run(grid.expand(seed), monte_carlo_backend())` is bitwise
// reproducible whether it runs on 1 thread or 64 - the contract
// tests/core/sweep_test.cc pins down, and what lets benches parallelize
// without changing their printed reference values.
//
// SweepEngine delegates the actual evaluation to an Executor
// (core/executor.h): by default InProcessExecutor (a thread lane over the
// shared DispatchCore), and the same cells can go through forked workers,
// remote daemons, any hybrid lane mix (core/dispatch.h) or a ShardSpec
// split without changing a single printed digit.  A cell_fn that throws
// is rethrown on the calling thread (as std::runtime_error naming the
// cell) once the remaining cells finish - it no longer std::terminates a
// worker thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/executor.h"
#include "core/result.h"
#include "core/scenario.h"

namespace rbx {

// i-th output of the splitmix64 stream seeded with `master_seed`; used as
// the RNG seed of cell i.  Pure function of (master_seed, cell_index).
std::uint64_t derive_cell_seed(std::uint64_t master_seed,
                               std::uint64_t cell_index);

class SweepEngine {
 public:
  struct Options {
    // Worker threads; 0 = std::thread::hardware_concurrency().
    std::size_t threads = 0;
  };

  SweepEngine() : SweepEngine(Options()) {}
  explicit SweepEngine(Options options);

  std::size_t threads() const { return threads_; }

  // Evaluates cell i as cell_fn(cells[i], i); results in input order.
  // cell_fn must be safe to call concurrently (pure backends are).  If any
  // cell_fn invocation throws, the first failure (in cell order) is
  // rethrown as std::runtime_error after all cells have been attempted.
  std::vector<ResultSet> run(const std::vector<Scenario>& cells,
                             const CellFn& cell_fn) const;

  // Shorthand: evaluate every cell on one backend.
  std::vector<ResultSet> run(const std::vector<Scenario>& cells,
                             const EvalBackend& backend) const;

 private:
  std::size_t threads_;
};

// Cartesian-product expansion of a base Scenario.
//
//   auto cells = SweepGrid(base)
//                    .axis({0.5, 1.0, 2.0}, apply_rho)
//                    .schemes({SchemeKind::kAsynchronous,
//                              SchemeKind::kSynchronized})
//                    .expand(master_seed);
//
// Axes vary row-major (the first axis slowest, the scheme axis fastest);
// each cell's seed is derive_cell_seed(master_seed, cell_index).
class SweepGrid {
 public:
  using Apply = std::function<void(Scenario&, double)>;

  explicit SweepGrid(Scenario base);

  SweepGrid& axis(std::vector<double> values, Apply apply);
  SweepGrid& schemes(std::vector<SchemeKind> schemes);

  std::size_t cells() const;
  std::vector<Scenario> expand(std::uint64_t master_seed) const;

 private:
  struct Axis {
    std::vector<double> values;
    Apply apply;
  };

  Scenario base_;
  std::vector<Axis> axes_;
  std::vector<SchemeKind> schemes_;
};

}  // namespace rbx
