// Density backends: the Figure 6 evaluation as registered EvalBackends.
//
// Figure 6 plots the interval density f_X(t) on a fixed grid of 21 points
// over normalized time [0, 2].  Historically the bench called the model
// and simulator layers directly, which kept it off the Scenario/EvalPlan
// seam - it could not run on --workers, --connect or --fleet.  These
// backends put the same two evaluations behind registered names so a
// density sweep ships to any executor like every other cell:
//
//   density-analytic  the phase-type density of the R1-R4 chain sampled
//                     on the grid ("density_f_0".."density_f_20", plus
//                     the paper's impulse f_X(0) = sum mu as
//                     "density_f0" and E[X] as "mean_interval_x")
//   density-mc        a Monte-Carlo histogram of interval samples on the
//                     same grid's 20 bins ("density_bin_0".."_19", each
//                     metric count = the bin count), seeded per cell so
//                     every execution mode reproduces the bytes
//
// The grid is part of the metric contract (names embed the index), so it
// is fixed here rather than parameterized per scenario.
#pragma once

#include <cstddef>
#include <string>

#include "core/backend.h"

namespace rbx {

// The Figure 6 grid: t in [0, kDensityTMax] at kDensityPoints uniform
// points; the histogram uses the kDensityPoints - 1 bins between them.
inline constexpr double kDensityTMax = 2.0;
inline constexpr std::size_t kDensityPoints = 21;

// The grid point t_i = kDensityTMax * i / (kDensityPoints - 1).
double density_grid_t(std::size_t i);

class DensityAnalyticBackend : public EvalBackend {
 public:
  std::string name() const override { return "density-analytic"; }
  bool supports(const Scenario& scenario) const override;
  ResultSet evaluate(const Scenario& scenario) const override;
};

class DensityMonteCarloBackend : public EvalBackend {
 public:
  std::string name() const override { return "density-mc"; }
  bool supports(const Scenario& scenario) const override;
  ResultSet evaluate(const Scenario& scenario) const override;
};

}  // namespace rbx
