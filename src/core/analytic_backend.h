// Closed-form / Markov-chain evaluation of a Scenario (paper Sections 2-4).
//
// Dispatches on the scenario's scheme:
//
//  * kAsynchronous - the Section 2 phase-type chain.  For n <= 12 the full
//    2^n + 1 state model is solved ("mean_interval_x", "stddev_interval_x",
//    "mean_line_age", per-process "rp_count_i" in the three counting
//    conventions).  For homogeneous rates the lumped R1'-R4' chain is also
//    evaluated ("mean_interval_x_lumped", ...), and for n > 12 it is the
//    only representation (the full chain would be 4097+ states).
//  * kSynchronized - Section 3: "sync_mean_max_wait" (E[Z], closed form and
//    quadrature cross-check), "sync_mean_loss" (CL) and per-process
//    "sync_mean_wait_i".
//  * kPseudoRecoveryPoints - Section 4 overheads: snapshots and time
//    overhead per RP, recording fractions, and the E[sup y_i] rollback
//    bound.
//
// All metrics are exact (half_width = 0, count = 0); the seed and sample
// budget of the scenario are ignored.
//
// Solution cache: because the metrics depend only on (scheme, rates,
// t_record) - never on the seed, sample budget or label - grid cells that
// share those inputs share the entire chain build / LU / uniformization
// work.  evaluate() memoizes the solved metric list keyed by the wire
// encoding of exactly those inputs and re-labels cached metrics per cell,
// so a fig5-style sweep that varies the seed axis pays for each distinct
// parameter point once.  A hit replays the metrics in insertion order with
// the doubles bit-preserved, so cached and fresh evaluations are bitwise
// identical (pinned by tests/perf/analytic_cache_test.cc).  The cache is
// striped across kCacheShards independently-locked shards selected by the
// key's hash (sweep threads share the backend singleton; a single mutex
// serialized every lookup and showed up as contention in the threaded
// perf kernels - see perf kernel analytic_cache_hits_t8).  Each shard
// resets independently when it reaches its share of kMaxCachedModels,
// which bounds memory on adversarial grids.  Construct with
// cache_models=false to force every evaluation to solve from scratch.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/backend.h"

namespace rbx {

class AnalyticBackend : public EvalBackend {
 public:
  static constexpr std::size_t kMaxCachedModels = 4096;
  // Power of two well above any realistic sweep thread count: two threads
  // only contend when their keys collide mod 16.
  static constexpr std::size_t kCacheShards = 16;

  AnalyticBackend() : AnalyticBackend(true) {}
  explicit AnalyticBackend(bool cache_models)
      : cache_models_(cache_models) {}

  std::string name() const override { return "analytic"; }
  bool supports(const Scenario& scenario) const override;
  ResultSet evaluate(const Scenario& scenario) const override;

  // Cache observability (tests and perf tooling): total entries across
  // all shards.
  std::size_t cached_models() const;

 private:
  struct CacheShard {
    std::mutex mutex;
    std::unordered_map<std::string, std::vector<Metric>> entries;
  };
  CacheShard& shard_for(const std::string& key) const;

  bool cache_models_;
  mutable CacheShard shards_[kCacheShards];
};

}  // namespace rbx
