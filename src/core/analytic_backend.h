// Closed-form / Markov-chain evaluation of a Scenario (paper Sections 2-4).
//
// Dispatches on the scenario's scheme:
//
//  * kAsynchronous - the Section 2 phase-type chain.  For n <= 12 the full
//    2^n + 1 state model is solved ("mean_interval_x", "stddev_interval_x",
//    "mean_line_age", per-process "rp_count_i" in the three counting
//    conventions).  For homogeneous rates the lumped R1'-R4' chain is also
//    evaluated ("mean_interval_x_lumped", ...), and for n > 12 it is the
//    only representation (the full chain would be 4097+ states).
//  * kSynchronized - Section 3: "sync_mean_max_wait" (E[Z], closed form and
//    quadrature cross-check), "sync_mean_loss" (CL) and per-process
//    "sync_mean_wait_i".
//  * kPseudoRecoveryPoints - Section 4 overheads: snapshots and time
//    overhead per RP, recording fractions, and the E[sup y_i] rollback
//    bound.
//
// All metrics are exact (half_width = 0, count = 0); the seed and sample
// budget of the scenario are ignored.
#pragma once

#include "core/backend.h"

namespace rbx {

class AnalyticBackend : public EvalBackend {
 public:
  std::string name() const override { return "analytic"; }
  bool supports(const Scenario& scenario) const override;
  ResultSet evaluate(const Scenario& scenario) const override;
};

}  // namespace rbx
