#include "trace/dot.h"

#include <cstdio>
#include <functional>
#include <sstream>

namespace rbx {

namespace {

std::string fmt_time(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", t);
  return buf;
}

}  // namespace

std::string history_to_dot(const History& history, const std::string& title) {
  std::ostringstream os;
  os << "digraph \"" << title << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=circle, fontsize=10];\n";

  // Per-process chains of RP/PRP nodes in time order.
  const std::size_t n = history.num_processes();
  std::vector<std::vector<std::string>> columns(n);
  std::vector<std::string> interaction_edges;

  std::size_t interaction_id = 0;
  for (const TraceEvent& ev : history.events()) {
    switch (ev.kind) {
      case EventKind::kRecoveryPoint: {
        std::ostringstream id;
        id << "rp_" << ev.process << "_" << ev.rp_seq;
        std::ostringstream decl;
        decl << "  " << id.str() << " [label=\"RP" << ev.rp_seq << "^"
             << ev.process + 1 << "\\nt=" << fmt_time(ev.time) << "\"];\n";
        columns[ev.process].push_back(id.str());
        os << decl.str();
        break;
      }
      case EventKind::kPseudoRecoveryPoint: {
        std::ostringstream id;
        id << "prp_" << ev.process << "_" << ev.peer << "_" << ev.rp_seq;
        std::ostringstream decl;
        decl << "  " << id.str() << " [shape=doublecircle, label=\"PRP"
             << ev.rp_seq << "^" << ev.peer + 1 << "," << ev.process + 1
             << "\\nt=" << fmt_time(ev.time) << "\"];\n";
        columns[ev.process].push_back(id.str());
        os << decl.str();
        break;
      }
      case EventKind::kInteraction: {
        std::ostringstream id;
        id << "ix_" << interaction_id++;
        os << "  " << id.str() << " [shape=point, label=\"\"];\n";
        // Hook the interaction to the two process columns.
        columns[ev.process].push_back(id.str());
        columns[ev.peer].push_back(id.str());
        break;
      }
    }
  }

  for (ProcessId p = 0; p < n; ++p) {
    os << "  p" << p << " [shape=box, label=\"P" << p + 1 << "\"];\n";
    std::string prev = "p";
    prev += std::to_string(p);
    for (const std::string& node : columns[p]) {
      os << "  " << prev << " -> " << node << ";\n";
      prev = node;
    }
  }
  for (const std::string& e : interaction_edges) {
    os << e;
  }
  os << "}\n";
  return os.str();
}

std::string ctmc_to_dot(
    const Ctmc& chain,
    const std::function<std::string(std::size_t)>& state_name,
    const std::string& title) {
  std::ostringstream os;
  os << "digraph \"" << title << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n";
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    os << "  s" << s << " [label=\"" << state_name(s) << "\"];\n";
  }
  const auto& gen = chain.generator();
  for (std::size_t u = 0; u < chain.num_states(); ++u) {
    for (std::size_t k = gen.row_begin(u); k < gen.row_end(u); ++k) {
      const std::size_t v = gen.entry_col(k);
      if (v == u) {
        continue;  // diagonal
      }
      char rate[32];
      std::snprintf(rate, sizeof(rate), "%.3g", gen.entry_value(k));
      os << "  s" << u << " -> s" << v << " [label=\"" << rate << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace rbx
