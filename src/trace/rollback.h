// Rollback propagation for asynchronous recovery blocks.
//
// When process p fails (error detected or acceptance test failed) at time
// t_f, it must resume from its latest recovery point before t_f.  Undoing
// the segment [RP, t_f] of p invalidates every interaction in it, forcing
// the peers involved to roll back too, which can invalidate further
// interactions - the paper's rollback propagation, in the worst case the
// domino effect back to the processes' beginnings.
//
// The analyzer computes the exact outcome: the maximal consistent restart
// line subject to "p must at least undo back to its last RP; everyone else
// starts from their current state".  Processes whose restart point ends up
// before t_f are the affected set; the rollback distance (paper Section 1)
// is the distance from the failure time to the restart line.
#pragma once

#include <vector>

#include "trace/history.h"
#include "trace/recovery_line.h"

namespace rbx {

struct RollbackResult {
  RecoveryLine line;                 // restart position per process
  std::vector<bool> affected;        // rolled back at all?
  std::size_t affected_count = 0;
  // sup over affected processes of (t_f - restart time); 0 if p had a
  // recovery point at exactly t_f and nothing propagated.
  double rollback_distance = 0.0;
  // Per-process distance (0 for unaffected processes).
  std::vector<double> distance;
  // True when at least one process was pushed back to its initial state.
  bool domino_to_start = false;
};

class RollbackAnalyzer {
 public:
  explicit RollbackAnalyzer(const History& history) : history_(history) {}

  // Outcome of a failure of process p at time t_f under asynchronous RBs.
  RollbackResult analyze_failure(ProcessId p, double t_f) const;

 private:
  const History& history_;
};

}  // namespace rbx
