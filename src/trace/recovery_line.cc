#include "trace/recovery_line.h"

#include "support/check.h"

namespace rbx {

namespace {

// Demotes `point` to the latest recovery point of process p strictly before
// `time`; falls back to the initial state.
RestartPoint demote_before(const History& history, ProcessId p, double time) {
  if (const auto rp = history.latest_rp_before(p, time)) {
    return *rp;
  }
  return RestartPoint{0.0, true, false, 0};
}

}  // namespace

RecoveryLine RecoveryLineFinder::latest_line(double time) const {
  std::vector<RestartPoint> ceiling(history_.num_processes());
  for (ProcessId p = 0; p < history_.num_processes(); ++p) {
    if (const auto rp = history_.latest_rp_at_or_before(p, time)) {
      ceiling[p] = *rp;
    } else {
      ceiling[p] = RestartPoint{0.0, true, false, 0};
    }
  }
  return constrained_line(std::move(ceiling));
}

RecoveryLine RecoveryLineFinder::latest_line() const {
  return latest_line(history_.last_time());
}

RecoveryLine RecoveryLineFinder::constrained_line(
    std::vector<RestartPoint> ceiling) const {
  const std::size_t n = history_.num_processes();
  RBX_CHECK(ceiling.size() == n);
  RecoveryLine line;
  line.points = std::move(ceiling);

  // Iterated demotion to the greatest fixpoint.  Each pass scans all pairs;
  // a demotion can invalidate earlier pairs, so repeat until clean.  Every
  // demotion strictly decreases one component onto the finite set of RP
  // times, so termination is guaranteed.
  bool changed = true;
  while (changed) {
    changed = false;
    for (ProcessId i = 0; i < n; ++i) {
      for (ProcessId j = i + 1; j < n; ++j) {
        const double ti = line.points[i].time;
        const double tj = line.points[j].time;
        const auto violation = history_.first_interaction_in(i, j, ti, tj);
        if (!violation) {
          continue;
        }
        // The later point must retreat past the earliest sandwiched
        // interaction (any consistent line at or below the candidate has
        // its later component strictly before it; see header).
        const ProcessId later = ti >= tj ? i : j;
        line.points[later] = demote_before(history_, later, *violation);
        changed = true;
      }
    }
  }
  return line;
}

bool RecoveryLineFinder::is_consistent(const RecoveryLine& line) const {
  const std::size_t n = history_.num_processes();
  RBX_CHECK(line.points.size() == n);
  for (ProcessId i = 0; i < n; ++i) {
    for (ProcessId j = i + 1; j < n; ++j) {
      if (history_.has_interaction_in(i, j, line.points[i].time,
                                      line.points[j].time)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace rbx
