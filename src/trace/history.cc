#include "trace/history.h"

#include <algorithm>

#include "support/check.h"

namespace rbx {

double RecoveryLine::min_time() const {
  RBX_CHECK(!points.empty());
  double best = points[0].time;
  for (const auto& p : points) {
    best = std::min(best, p.time);
  }
  return best;
}

double RecoveryLine::max_time() const {
  RBX_CHECK(!points.empty());
  double best = points[0].time;
  for (const auto& p : points) {
    best = std::max(best, p.time);
  }
  return best;
}

History::History(std::size_t num_processes)
    : n_(num_processes), rp_times_(num_processes),
      pair_interactions_(num_processes * (num_processes + 1) / 2),
      prps_(num_processes) {
  RBX_CHECK(num_processes >= 1);
}

std::size_t History::pair_index(ProcessId a, ProcessId b) const {
  RBX_CHECK(a < n_ && b < n_ && a != b);
  if (a > b) {
    std::swap(a, b);
  }
  // Triangular index over unordered pairs.
  return a * n_ - a * (a + 1) / 2 + (b - a - 1);
}

void History::add_recovery_point(ProcessId p, double time) {
  RBX_CHECK(p < n_);
  RBX_CHECK_MSG(time >= last_time_, "events must be time-ordered");
  last_time_ = time;
  rp_times_[p].push_back(time);
  events_.push_back(
      {EventKind::kRecoveryPoint, time, p, p, rp_times_[p].size()});
}

void History::add_pseudo_recovery_point(ProcessId p, double time,
                                        ProcessId owner,
                                        std::size_t owner_rp_seq) {
  RBX_CHECK(p < n_ && owner < n_ && p != owner);
  RBX_CHECK_MSG(time >= last_time_, "events must be time-ordered");
  last_time_ = time;
  prps_[p].push_back({owner, owner_rp_seq, time});
  events_.push_back(
      {EventKind::kPseudoRecoveryPoint, time, p, owner, owner_rp_seq});
}

void History::add_interaction(ProcessId a, ProcessId b, double time) {
  RBX_CHECK_MSG(time >= last_time_, "events must be time-ordered");
  last_time_ = time;
  pair_interactions_[pair_index(a, b)].push_back(time);
  events_.push_back({EventKind::kInteraction, time, a, b, 0});
}

const std::vector<double>& History::rp_times(ProcessId p) const {
  RBX_CHECK(p < n_);
  return rp_times_[p];
}

std::size_t History::rp_count(ProcessId p) const {
  RBX_CHECK(p < n_);
  return rp_times_[p].size();
}

std::optional<RestartPoint> History::latest_rp_at_or_before(
    ProcessId p, double time) const {
  RBX_CHECK(p < n_);
  const auto& times = rp_times_[p];
  const auto it = std::upper_bound(times.begin(), times.end(), time);
  if (it == times.begin()) {
    return std::nullopt;
  }
  const std::size_t idx = static_cast<std::size_t>(it - times.begin()) - 1;
  return RestartPoint{times[idx], false, false, idx + 1};
}

std::optional<RestartPoint> History::latest_rp_before(ProcessId p,
                                                      double time) const {
  RBX_CHECK(p < n_);
  const auto& times = rp_times_[p];
  const auto it = std::lower_bound(times.begin(), times.end(), time);
  if (it == times.begin()) {
    return std::nullopt;
  }
  const std::size_t idx = static_cast<std::size_t>(it - times.begin()) - 1;
  return RestartPoint{times[idx], false, false, idx + 1};
}

std::optional<RestartPoint> History::prp_for(ProcessId p, ProcessId owner,
                                             std::size_t owner_rp_seq) const {
  RBX_CHECK(p < n_);
  // PRP lists are short (purging keeps only the newest per owner in real
  // deployments); linear scan from the back finds the newest match first.
  const auto& list = prps_[p];
  for (auto it = list.rbegin(); it != list.rend(); ++it) {
    if (it->owner == owner && it->owner_rp_seq == owner_rp_seq) {
      return RestartPoint{it->time, false, true, owner_rp_seq};
    }
  }
  return std::nullopt;
}

const std::vector<double>& History::interaction_times(ProcessId a,
                                                      ProcessId b) const {
  return pair_interactions_[pair_index(a, b)];
}

bool History::has_interaction_in(ProcessId a, ProcessId b, double lo,
                                 double hi) const {
  return first_interaction_in(a, b, lo, hi).has_value();
}

std::optional<double> History::first_interaction_in(ProcessId a, ProcessId b,
                                                    double lo,
                                                    double hi) const {
  if (lo > hi) {
    std::swap(lo, hi);
  }
  const auto& times = pair_interactions_[pair_index(a, b)];
  const auto it = std::lower_bound(times.begin(), times.end(), lo);
  if (it == times.end() || *it > hi) {
    return std::nullopt;
  }
  return *it;
}

}  // namespace rbx
