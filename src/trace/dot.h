// GraphViz DOT exporters.
//
// The paper's Figures 1, 7 and 8 are history diagrams and Figures 2 and 3
// are the Markov chains; these helpers regenerate their content as DOT so
// the structures can be inspected (and diffed in tests) without a plotting
// stack.
#pragma once

#include <functional>
#include <string>

#include "markov/ctmc.h"
#include "trace/history.h"

namespace rbx {

// History diagram: one column ("rank chain") per process with RP/PRP nodes,
// dashed edges for interactions - the shape of paper Figures 1 and 8.
std::string history_to_dot(const History& history,
                           const std::string& title = "history");

// Markov chain with rate-labelled edges - the shape of paper Figures 2/3.
// `state_name(i)` supplies the node labels.
std::string ctmc_to_dot(const Ctmc& chain,
                        const std::function<std::string(std::size_t)>&
                            state_name,
                        const std::string& title = "ctmc");

}  // namespace rbx
