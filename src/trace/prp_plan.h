// Rollback planning with pseudo recovery points (paper Section 4).
//
// Implantation: when P_j establishes RP_k^j it broadcasts a request; each
// other process P_i' records PRP_{k,i'}^j upon completing its current
// instruction.  RP_k^j plus the n-1 PRPs form the pseudo recovery line
// PRL_k^j.
//
// Rollback (the paper's three-step algorithm with rollback pointer p):
//   (1) an error is found in P_i: p := i;
//   (2) P_p rolls back to its previous recovery point RP_k^p; every process
//       affected by that rollback restores PRP_{k}^{p} (its member of the
//       pseudo recovery line);
//   (3) for every affected process P_i', if its rollback has not passed its
//       own most recent recovery point, set p := i' and repeat from (2).
//
// Step 3 handles contamination: a PRP newer than the process's own last
// acceptance test may hold an erroneous state (no AT preceded it), so the
// pointer moves and pushes the line further back.  Distances are bounded -
// most processes pass exactly one of their own RPs (paper: "the shortest
// rollback distance ... without synchronization").
#pragma once

#include <vector>

#include "trace/history.h"

namespace rbx {

// Whether the detected error is known to be local to the detecting process.
// Local errors (the common case under the paper's perfect-acceptance-test
// assumption) are fully repaired by one pseudo recovery line: the PRPs were
// recorded before the error existed anywhere else.  Propagated errors may
// predate the PRPs' contents, so the pointer loop of step (3) must run.
enum class ErrorScope { kLocal, kPropagated };

struct PrpRollbackResult {
  // Final restart position per process (RP for the last pointer process,
  // PRPs or current state for the others).
  std::vector<RestartPoint> restart;
  std::vector<bool> affected;
  std::size_t affected_count = 0;
  std::size_t iterations = 0;       // times step (2) executed
  double rollback_distance = 0.0;   // sup_i (t_f - restart_i) over affected
  std::vector<double> distance;
  // True when some process exhausted its RPs and restarts from scratch
  // (cannot happen when every process checkpoints at least once before the
  // failure, but kept for completeness).
  bool domino_to_start = false;
};

class PrpRollbackPlanner {
 public:
  // `affects_everyone`: the paper implants a PRP in every process and, on
  // rollback, restores all of them (conservative).  When false, only
  // processes that interacted with the pointer process since the restored
  // RP are pulled in (the transitive closure still forms through repeated
  // iterations); this models the optimization discussed alongside SDCP
  // schemes and is exercised by the ablation bench.
  explicit PrpRollbackPlanner(const History& history,
                              bool affects_everyone = true)
      : history_(history), affects_everyone_(affects_everyone) {}

  // Plans recovery for an error detected in process p at time t_f.  With
  // ErrorScope::kLocal the plan stops after restoring the pseudo recovery
  // line of p's previous RP; with kPropagated it runs the paper's full
  // pointer loop until every affected process has retreated past one of its
  // own (acceptance-test-certified) recovery points.
  PrpRollbackResult plan(ProcessId p, double t_f,
                         ErrorScope scope = ErrorScope::kPropagated) const;

 private:
  const History& history_;
  bool affects_everyone_;
};

}  // namespace rbx
