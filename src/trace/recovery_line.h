// Exact recovery-line computation on histories.
//
// The paper (Section 2.2) defines a recovery line for processes P_1..P_n as
// a combination of one recovery point per process such that for every pair
// (i, j) no interaction time falls inside the closed interval between the
// two chosen RP times ("no communication sandwiched between t[RP_i] and
// t[RP_j]").
//
// Consistent combinations form a lattice under the componentwise order (the
// componentwise max of two consistent lines is consistent; proof in
// DESIGN.md), so a unique maximal line at or before any cut-off exists.  It
// is found by iterated demotion: start from each process's latest RP and,
// while some pair straddles an interaction, move the later RP of the pair
// back past the earliest violating interaction.  Every demotion is forced
// (any consistent line below the current candidate must satisfy it), so the
// fixpoint is the maximum.  A process that runs out of recovery points
// restarts from its initial state (time 0) - the paper's domino outcome.
#pragma once

#include <optional>

#include "trace/history.h"

namespace rbx {

class RecoveryLineFinder {
 public:
  explicit RecoveryLineFinder(const History& history) : history_(history) {}

  // The maximal recovery line using only RPs at or before `time`.
  RecoveryLine latest_line(double time) const;

  // The maximal line at the end of the recorded history.
  RecoveryLine latest_line() const;

  // Maximal consistent line subject to per-process upper bounds on the
  // restart position.  `ceiling[p]` is the latest restart point process p
  // may use; processes may also be pinned to "current state" (no rollback)
  // by passing a RestartPoint at the current time.  This is the primitive
  // the rollback analyzer builds on.
  RecoveryLine constrained_line(std::vector<RestartPoint> ceiling) const;

  // True when `line` satisfies the pairwise no-sandwiched-interaction
  // condition (used by tests and by the simulator's online validation).
  bool is_consistent(const RecoveryLine& line) const;

 private:
  const History& history_;
};

}  // namespace rbx
