#include "trace/rollback.h"

#include "support/check.h"

namespace rbx {

RollbackResult RollbackAnalyzer::analyze_failure(ProcessId p,
                                                 double t_f) const {
  const std::size_t n = history_.num_processes();
  RBX_CHECK(p < n);

  // Ceiling: the failed process may restart no later than its last RP
  // strictly before the failure (the state at t_f is the one rejected);
  // every other process is pinned at its current state.
  std::vector<RestartPoint> ceiling(n);
  for (ProcessId q = 0; q < n; ++q) {
    if (q == p) {
      if (const auto rp = history_.latest_rp_before(q, t_f)) {
        ceiling[q] = *rp;
      } else {
        ceiling[q] = RestartPoint{0.0, true, false, 0};
      }
    } else {
      // Virtual checkpoint "now": unaffected processes keep running.
      ceiling[q] = RestartPoint{t_f, false, false, 0};
    }
  }

  RecoveryLineFinder finder(history_);
  RollbackResult result;
  result.line = finder.constrained_line(std::move(ceiling));
  result.affected.assign(n, false);
  result.distance.assign(n, 0.0);
  for (ProcessId q = 0; q < n; ++q) {
    const RestartPoint& pt = result.line.points[q];
    const bool rolled = q == p || pt.time < t_f || pt.is_initial;
    if (rolled) {
      result.affected[q] = true;
      ++result.affected_count;
      result.distance[q] = t_f - pt.time;
      result.rollback_distance =
          std::max(result.rollback_distance, result.distance[q]);
      if (pt.is_initial) {
        result.domino_to_start = true;
      }
    }
  }
  return result;
}

}  // namespace rbx
