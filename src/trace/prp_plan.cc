#include "trace/prp_plan.h"

#include <algorithm>

#include "support/check.h"

namespace rbx {

namespace {

RestartPoint initial_state() { return RestartPoint{0.0, true, false, 0}; }

}  // namespace

PrpRollbackResult PrpRollbackPlanner::plan(ProcessId p, double t_f,
                                           ErrorScope scope) const {
  const std::size_t n = history_.num_processes();
  RBX_CHECK(p < n);

  PrpRollbackResult result;
  result.restart.assign(n, RestartPoint{t_f, false, false, 0});
  result.affected.assign(n, false);
  result.distance.assign(n, 0.0);

  // Tracks which processes have already served as the rollback pointer;
  // after serving, a process's restart sits on one of its own RPs, so the
  // step-3 predicate can never select it again.
  std::vector<bool> was_pointer(n, false);

  ProcessId pointer = p;
  for (;;) {
    ++result.iterations;
    was_pointer[pointer] = true;
    const double from = result.restart[pointer].time;

    // Step 2a: the pointer process retreats to its previous recovery point.
    const auto rp = history_.latest_rp_before(pointer, from);
    if (!rp) {
      // No recovery point at all: back to the initial state, and so is
      // every process entangled with it (there are no PRPs to restore).
      result.domino_to_start = true;
      result.restart[pointer] = initial_state();
      result.affected[pointer] = true;
      for (ProcessId q = 0; q < n; ++q) {
        if (q != pointer && (affects_everyone_ ||
                             history_.has_interaction_in(q, pointer, 0.0,
                                                         from))) {
          result.restart[q] = initial_state();
          result.affected[q] = true;
        }
      }
      break;
    }
    result.restart[pointer] = *rp;
    result.affected[pointer] = true;

    // Step 2b: affected processes restore their PRP of this RP's pseudo
    // recovery line.  Restores only ever move a process further back.
    for (ProcessId q = 0; q < n; ++q) {
      if (q == pointer) {
        continue;
      }
      const bool affected =
          affects_everyone_ ||
          history_.has_interaction_in(q, pointer, rp->time, from);
      if (!affected) {
        continue;
      }
      auto target = history_.prp_for(q, pointer, rp->rp_seq);
      if (!target) {
        // PRP missing (purged or never implanted): fall back to q's own
        // latest RP no later than the pointer's restored RP.
        if (const auto own = history_.latest_rp_at_or_before(q, rp->time)) {
          target = own;
        } else {
          target = initial_state();
        }
      }
      if (target->time < result.restart[q].time || target->is_initial) {
        result.restart[q] = *target;
        result.affected[q] = true;
        if (target->is_initial) {
          result.domino_to_start = true;
        }
      }
    }

    // A local error is fully covered by the first pseudo recovery line: the
    // PRPs predate the error, so their contents are clean by construction.
    if (scope == ErrorScope::kLocal) {
      break;
    }

    // Step 3: find an affected process whose rollback has not yet passed
    // its own most recent recovery point; it becomes the new pointer.
    ProcessId next = n;
    for (ProcessId q = 0; q < n; ++q) {
      if (!result.affected[q] || was_pointer[q]) {
        continue;
      }
      const auto own = history_.latest_rp_at_or_before(q, t_f);
      const double own_time = own ? own->time : 0.0;
      if (result.restart[q].time > own_time) {
        next = q;
        break;
      }
    }
    if (next == n) {
      break;
    }
    pointer = next;
  }

  for (ProcessId q = 0; q < n; ++q) {
    if (result.affected[q]) {
      ++result.affected_count;
      result.distance[q] = t_f - result.restart[q].time;
      result.rollback_distance =
          std::max(result.rollback_distance, result.distance[q]);
    }
  }
  return result;
}

}  // namespace rbx
