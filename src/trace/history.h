// Execution histories of cooperating concurrent processes.
//
// A History is the "history diagram" of the paper's Figure 1: per-process
// recovery points (and pseudo recovery points) plus pairwise interactions,
// all stamped with a global time.  The exact recovery-line finder, the
// rollback-propagation analyzer and the PRP planner all operate on this
// representation; both the discrete-event simulator and the thread runtime
// emit it.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace rbx {

using ProcessId = std::size_t;

enum class EventKind {
  kRecoveryPoint,        // RP with acceptance test (paper's RP_j^i)
  kPseudoRecoveryPoint,  // PRP implanted on behalf of another process's RP
  kInteraction,          // symmetric interprocess communication
};

struct TraceEvent {
  EventKind kind = EventKind::kInteraction;
  double time = 0.0;
  ProcessId process = 0;  // owner (RP/PRP) or first party (interaction)
  // Interaction: the second party.  PRP: the process whose RP triggered the
  // implantation.  RP: unused.
  ProcessId peer = 0;
  // RP: per-process recovery point sequence number (1-based).
  // PRP: the triggering RP's sequence number in `peer`.
  std::size_t rp_seq = 0;
};

// A per-process restart position: the time of the checkpoint restored.  Time
// 0 denotes the process's initial state (restart from the beginning - the
// paper's worst-case domino outcome).
struct RestartPoint {
  double time = 0.0;
  bool is_initial = true;         // no recorded checkpoint: back to start
  bool is_pseudo = false;         // restored from a PRP rather than an RP
  std::size_t rp_seq = 0;         // sequence number when !is_initial
};

// A recovery line: one restart point per process.
struct RecoveryLine {
  std::vector<RestartPoint> points;

  double min_time() const;
  double max_time() const;
};

class History {
 public:
  explicit History(std::size_t num_processes);

  std::size_t num_processes() const { return n_; }

  // Events must be appended in non-decreasing time order.
  void add_recovery_point(ProcessId p, double time);
  void add_pseudo_recovery_point(ProcessId p, double time, ProcessId owner,
                                 std::size_t owner_rp_seq);
  void add_interaction(ProcessId a, ProcessId b, double time);

  const std::vector<TraceEvent>& events() const { return events_; }
  double last_time() const { return last_time_; }

  // Recovery points of process p, in time order.
  const std::vector<double>& rp_times(ProcessId p) const;
  std::size_t rp_count(ProcessId p) const;

  // The latest recovery point of p at or before `time` (with its 1-based
  // sequence number); nullopt when none exists.
  std::optional<RestartPoint> latest_rp_at_or_before(ProcessId p,
                                                     double time) const;
  // Strictly before `time`.
  std::optional<RestartPoint> latest_rp_before(ProcessId p, double time) const;

  // The PRP implanted in process p for the owner's RP with sequence seq;
  // nullopt if it was never implanted.
  std::optional<RestartPoint> prp_for(ProcessId p, ProcessId owner,
                                      std::size_t owner_rp_seq) const;

  // Interaction times between the (unordered) pair {a, b}, in time order.
  const std::vector<double>& interaction_times(ProcessId a, ProcessId b) const;

  // True when the pair {a, b} has at least one interaction time inside the
  // closed interval [lo, hi] (the paper's "sandwiched" condition).
  bool has_interaction_in(ProcessId a, ProcessId b, double lo,
                          double hi) const;

  // Earliest interaction of the pair inside [lo, hi], if any.
  std::optional<double> first_interaction_in(ProcessId a, ProcessId b,
                                             double lo, double hi) const;

 private:
  std::size_t pair_index(ProcessId a, ProcessId b) const;

  std::size_t n_;
  std::vector<TraceEvent> events_;
  double last_time_ = 0.0;
  std::vector<std::vector<double>> rp_times_;            // per process
  std::vector<std::vector<double>> pair_interactions_;   // per unordered pair
  struct PrpRecord {
    ProcessId owner;
    std::size_t owner_rp_seq;
    double time;
  };
  std::vector<std::vector<PrpRecord>> prps_;             // per process
};

}  // namespace rbx
