// FIG6 - reproduces the paper's Figure 6: the probability density f_X(t)
// of the interval between successive recovery lines for three parameter
// cases (three processes), over normalized time t in [0, 2].
//
// Case parameters (OCR-recovered from the figure caption; DESIGN.md
// interpretation decision #5):
//   case 1: mu = (1.0, 1.0, 1.0),    lambda = (1.0, 1.0, 1.0)
//   case 2: mu = (0.6, 0.45, 0.45),  lambda = (0.5, 0.5, 0.5)
//   case 3: mu = (0.6, 0.45, 0.45),  lambda = (0.75, 0.75, 0.75)
//
// The paper highlights a "sharp impulse near t = 0" caused by the direct
// S_r -> S_{r+1} transition (rule R4): f_X(0) = sum mu.  The analytic
// column is the phase-type density of the R1-R4 chain; the histogram
// column is a Monte-Carlo check on the same grid.
#include <cstdio>

#include "core/api.h"

int main(int argc, char** argv) {
  using namespace rbx;
  const ExperimentOptions opts =
      ExperimentOptions::parse(argc, argv, /*samples=*/200000, /*nmax=*/0);
  print_banner("FIG6", "Figure 6: density f_X(t) for three cases");

  struct Case {
    const char* label;
    double mu1, mu2, mu3, l;
  };
  const Case cases[] = {
      {"case1", 1.0, 1.0, 1.0, 1.0},
      {"case2", 0.6, 0.45, 0.45, 0.5},
      {"case3", 0.6, 0.45, 0.45, 0.75},
  };

  constexpr std::size_t kPoints = 21;
  constexpr double kTMax = 2.0;

  TextTable table({"t", "f(t) case1", "mc case1", "f(t) case2", "mc case2",
                   "f(t) case3", "mc case3"});
  std::vector<std::vector<double>> analytic;
  std::vector<Histogram> hists;
  for (const Case& c : cases) {
    const auto params =
        ProcessSetParams::three(c.mu1, c.mu2, c.mu3, c.l, c.l, c.l);
    AsyncRbModel model(params);
    analytic.push_back(model.interval().pdf_grid(kTMax, kPoints));

    Histogram h(0.0, kTMax, kPoints - 1);
    AsyncRbSimulator sim(params, opts.seed);
    const AsyncSimResult r = sim.run_lines(opts.samples);
    for (double x : r.interval.samples()) {
      h.add(x);
    }
    hists.push_back(std::move(h));
  }

  for (std::size_t i = 0; i < kPoints; ++i) {
    const double t =
        kTMax * static_cast<double>(i) / static_cast<double>(kPoints - 1);
    std::vector<std::string> row;
    row.push_back(TextTable::fmt(t, 2));
    for (std::size_t c = 0; c < 3; ++c) {
      row.push_back(TextTable::fmt(analytic[c][i], 4));
      // The histogram estimates the density at bin centers; map the grid
      // point to the nearest bin (edges use the adjacent bin).
      const std::size_t bin = i == 0 ? 0 : (i - 1);
      row.push_back(TextTable::fmt(hists[c].density(bin), 4));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render("Figure 6 reproduction").c_str());

  for (std::size_t c = 0; c < 3; ++c) {
    const auto params = ProcessSetParams::three(
        cases[c].mu1, cases[c].mu2, cases[c].mu3, cases[c].l, cases[c].l,
        cases[c].l);
    AsyncRbModel model(params);
    std::printf("%s: f(0) = %.4f (= sum mu = %.4f, the paper's impulse); "
                "E[X] = %.4f\n",
                cases[c].label, model.interval_pdf(0.0), params.total_mu(),
                model.mean_interval());
  }
  return 0;
}
