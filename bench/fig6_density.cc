// FIG6 - reproduces the paper's Figure 6: the probability density f_X(t)
// of the interval between successive recovery lines for three parameter
// cases (three processes), over normalized time t in [0, 2].
//
// Case parameters (OCR-recovered from the figure caption; DESIGN.md
// interpretation decision #5):
//   case 1: mu = (1.0, 1.0, 1.0),    lambda = (1.0, 1.0, 1.0)
//   case 2: mu = (0.6, 0.45, 0.45),  lambda = (0.5, 0.5, 0.5)
//   case 3: mu = (0.6, 0.45, 0.45),  lambda = (0.75, 0.75, 0.75)
//
// The paper highlights a "sharp impulse near t = 0" caused by the direct
// S_r -> S_{r+1} transition (rule R4): f_X(0) = sum mu.  The analytic
// column is the phase-type density of the R1-R4 chain; the histogram
// column is a Monte-Carlo check on the same grid.
//
// Each case is one sweep cell evaluated through the registered density
// backends (core/density_backend.h), so the grid runs under every
// execution mode - --threads, --workers, --connect, --fleet, --shard +
// --merge - with byte-identical output.
#include <cstdio>

#include "bench_main.h"
#include "core/density_backend.h"

int main(int argc, char** argv) {
  using namespace rbx;

  struct Case {
    const char* label;
    double mu1, mu2, mu3, l;
  };
  static const Case cases[] = {
      {"case1", 1.0, 1.0, 1.0, 1.0},
      {"case2", 0.6, 0.45, 0.45, 0.5},
      {"case3", 0.6, 0.45, 0.45, 0.75},
  };

  bench::SweepOutcome sweep = bench::run_sweep(
      argc, argv,
      {"FIG6", "Figure 6: density f_X(t) for three cases",
       /*samples=*/200000, /*nmax=*/0},
      [](const ExperimentOptions& opts) {
        std::vector<Scenario> cells;
        for (const Case& c : cases) {
          cells.push_back(
              Scenario::symmetric(3, 1.0, 1.0)
                  .params(ProcessSetParams::three(c.mu1, c.mu2, c.mu3, c.l,
                                                  c.l, c.l))
                  .seed(opts.seed)
                  .samples(opts.samples));
        }
        return cells;
      },
      EvalPlan{{EvalStep{"density-analytic", ""},
                EvalStep{"density-mc", "mc_"}}});
  if (!sweep.results) {
    return 0;  // --shard: partial written
  }
  const std::vector<ResultSet>& results = *sweep.results;

  TextTable table({"t", "f(t) case1", "mc case1", "f(t) case2", "mc case2",
                   "f(t) case3", "mc case3"});
  for (std::size_t i = 0; i < kDensityPoints; ++i) {
    std::vector<std::string> row;
    row.push_back(TextTable::fmt(density_grid_t(i), 2));
    for (std::size_t c = 0; c < 3; ++c) {
      row.push_back(TextTable::fmt(
          results[c].value("density_f_" + std::to_string(i)), 4));
      // The histogram estimates the density at bin centers; map the grid
      // point to the nearest bin (edges use the adjacent bin).
      const std::size_t bin = i == 0 ? 0 : (i - 1);
      row.push_back(TextTable::fmt(
          results[c].value("mc_density_bin_" + std::to_string(bin)), 4));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render("Figure 6 reproduction").c_str());

  for (std::size_t c = 0; c < 3; ++c) {
    const Scenario& s = sweep.cells[c];
    std::printf("%s: f(0) = %.4f (= sum mu = %.4f, the paper's impulse); "
                "E[X] = %.4f\n",
                cases[c].label, results[c].value("density_f0"),
                s.params().total_mu(), results[c].value("mean_interval_x"));
  }
  return 0;
}
