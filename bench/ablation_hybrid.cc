// ABL-HYBRID - the paper's closing suggestion, quantified: "optimal
// solutions may be a combination of these three categories".
//
// The hybrid scheme runs pseudo recovery points for cheap bounded recovery
// and additionally establishes a synchronized recovery line every Delta
// time units; a failure whose Section 4 pointer loop would cross the
// newest sync line restores that line instead.  The bench sweeps Delta and
// reports the recovery-distance distribution against the synchronization
// cost (CL per sync, Section 3), alongside the stationary line age of the
// pure asynchronous scheme (renewal formula E[X^2]/2E[X]) - the quantity a
// designer would trade off.
//
// Each Delta is one sweep cell evaluated through the registered "hybrid"
// backend (core/ablation_backend.h), so the sweep runs under every
// execution mode - --threads, --workers, --connect, --fleet, --shard +
// --merge, --journal - with byte-identical output.
#include <cstdio>

#include "bench_main.h"

int main(int argc, char** argv) {
  using namespace rbx;

  static const double periods[] = {0.5, 1.0, 2.0, 4.0, 8.0};
  bench::SweepOutcome sweep = bench::run_sweep(
      argc, argv,
      {"ABL-HYBRID",
       "PRP + periodic synchronization (Section 5's combination)",
       /*samples=*/2500, /*nmax=*/0},
      [](const ExperimentOptions& opts) {
        std::vector<Scenario> cells;
        for (double period : periods) {
          // A hot configuration where pure PRP occasionally rolls deep.
          cells.push_back(Scenario::symmetric(3, 0.4, 3.0)
                              .scheme(SchemeKind::kPseudoRecoveryPoints)
                              .t_record(1e-4)
                              .error_rate(0.25)
                              .prp_sync_period(period)
                              .seed(opts.seed)
                              .samples(opts.samples));
        }
        return cells;
      },
      EvalPlan{{EvalStep{"hybrid", ""}}});
  if (!sweep.results) {
    return 0;  // --shard: partial written
  }
  const std::vector<ResultSet>& results = *sweep.results;

  // The analytic header quantities are scheme constants (every cell
  // shares the rates), reported by the backend alongside the sweep.
  const ResultSet& head = results[0];
  std::printf("configuration: %s\n",
              sweep.cells[0].params().describe().c_str());
  std::printf("pure async    : E[X] = %.3f, stationary line age = %.3f\n",
              head.value("async_mean_interval"),
              head.value("async_mean_line_age"));
  std::printf("pure PRP bound: E[sup y] = %.3f\n",
              head.value("prp_mean_rollback_bound"));
  std::printf("sync commit   : CL = %.3f per synchronization\n\n",
              head.value("sync_commit_loss"));

  TextTable table({"sync period", "hybrid dist (mean)", "hybrid p95",
                   "hybrid max", "sync-line restores", "sync loss rate",
                   "pure PRP dist (mean)", "pure PRP max"});
  for (std::size_t k = 0; k < results.size(); ++k) {
    const ResultSet& res = results[k];
    const Metric& hybrid = res.metric("hybrid_distance");
    char restores[32];
    std::snprintf(restores, sizeof(restores), "%zu/%zu",
                  static_cast<std::size_t>(res.value("hybrid_sync_restores")),
                  static_cast<std::size_t>(res.value("failures")));
    table.add_row({TextTable::fmt(periods[k], 1),
                   fmt_ci(hybrid.value, hybrid.half_width, 3),
                   TextTable::fmt(res.value("hybrid_distance_p95"), 3),
                   TextTable::fmt(res.value("hybrid_distance_max"), 3),
                   restores,
                   TextTable::fmt(res.value("hybrid_sync_loss_rate"), 4),
                   TextTable::fmt(res.value("prp_distance"), 3),
                   TextTable::fmt(res.value("prp_distance_max"), 3)});
  }
  std::printf("%s\n",
              table
                  .render("Hybrid scheme vs pure PRP (errors at rate 0.25; "
                          "sync loss = CL x line rate)")
                  .c_str());
  std::printf(
      "Reading: the sync period dials recovery tail against steady-state\n"
      "loss - short periods cap the worst-case distance near the period at\n"
      "a loss rate approaching CL/period; long periods converge to pure\n"
      "PRP. The combination dominates either extreme when deadlines bind\n"
      "but synchronization is expensive - the paper's Section 5 intuition\n"
      "made concrete.\n");
  return 0;
}
