// ABL-HYBRID - the paper's closing suggestion, quantified: "optimal
// solutions may be a combination of these three categories".
//
// The hybrid scheme runs pseudo recovery points for cheap bounded recovery
// and additionally establishes a synchronized recovery line every Delta
// time units; a failure whose Section 4 pointer loop would cross the
// newest sync line restores that line instead.  The bench sweeps Delta and
// reports the recovery-distance distribution against the synchronization
// cost (CL per sync, Section 3), alongside the stationary line age of the
// pure asynchronous scheme (renewal formula E[X^2]/2E[X]) - the quantity a
// designer would trade off.
#include <cstdio>

#include "core/api.h"

int main(int argc, char** argv) {
  using namespace rbx;
  const ExperimentOptions opts =
      ExperimentOptions::parse(argc, argv, /*samples=*/2500, /*nmax=*/0);
  print_banner("ABL-HYBRID",
               "PRP + periodic synchronization (Section 5's combination)");

  // A hot configuration where pure PRP occasionally rolls deep.
  const auto params = ProcessSetParams::symmetric(3, 0.4, 3.0);
  AsyncRbModel async(params);
  SyncRbModel sync(params.mu());
  PrpModel prp(params, 1e-4);

  std::printf("configuration: %s\n", params.describe().c_str());
  std::printf("pure async    : E[X] = %.3f, stationary line age = %.3f\n",
              async.mean_interval(), async.mean_line_age());
  std::printf("pure PRP bound: E[sup y] = %.3f\n", prp.mean_rollback_bound());
  std::printf("sync commit   : CL = %.3f per synchronization\n\n",
              sync.mean_loss());

  TextTable table({"sync period", "hybrid dist (mean)", "hybrid p95",
                   "hybrid max", "sync-line restores", "sync loss rate",
                   "pure PRP dist (mean)", "pure PRP max"});
  for (double period : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    PrpSimParams sp;
    sp.error_rate = 0.25;
    sp.sync_period = period;
    PrpSimulator sim(params, sp, opts.seed);
    const PrpSimResult r = sim.run(opts.samples);
    const double loss_rate =
        static_cast<double>(r.sync_lines_established) / r.horizon *
        sync.mean_loss();
    char restores[32];
    std::snprintf(restores, sizeof(restores), "%zu/%zu",
                  r.hybrid_sync_restores, r.failures);
    table.add_row({TextTable::fmt(period, 1),
                   fmt_ci(r.hybrid_distance.mean(),
                          r.hybrid_distance.ci_half_width(), 3),
                   TextTable::fmt(r.hybrid_distance.quantile(0.95), 3),
                   TextTable::fmt(r.hybrid_distance.max(), 3), restores,
                   TextTable::fmt(loss_rate, 4),
                   TextTable::fmt(r.prp_distance.mean(), 3),
                   TextTable::fmt(r.prp_distance.max(), 3)});
  }
  std::printf("%s\n",
              table
                  .render("Hybrid scheme vs pure PRP (errors at rate 0.25; "
                          "sync loss = CL x line rate)")
                  .c_str());
  std::printf(
      "Reading: the sync period dials recovery tail against steady-state\n"
      "loss - short periods cap the worst-case distance near the period at\n"
      "a loss rate approaching CL/period; long periods converge to pure\n"
      "PRP. The combination dominates either extreme when deadlines bind\n"
      "but synchronization is expensive - the paper's Section 5 intuition\n"
      "made concrete.\n");
  return 0;
}
