// FIG2/3 - regenerates the structure of the paper's Figure 2 (the full
// Markov model for three processes) and Figure 3 (the simplified lumped
// chain), as state/transition inventories plus GraphViz DOT dumps.
//
// The full chain for n processes has 2^n + 1 states (paper Section 2.3's
// numbering, OCR-garbled in the source; DESIGN.md decision #1); the lumped
// chain has n + 2.  Lumping exactness is a test invariant; here the
// structures themselves are printed for inspection.
//
// Each n is one sweep cell evaluated through the registered
// "markov-structure" backend (core/structure_backend.h); the DOT dumps
// come from the same header's emitters (which also write torn-proof .dot
// files via wire::write_file_atomic when asked).  Purely analytic, so
// every execution mode prints identical bytes.
#include <cstdio>

#include "bench_main.h"
#include "core/structure_backend.h"

int main(int argc, char** argv) {
  using namespace rbx;

  bench::SweepOutcome sweep = bench::run_sweep(
      argc, argv,
      {"FIG2/3", "Markov chain structure regeneration", /*samples=*/0,
       /*nmax=*/8},
      [](const ExperimentOptions& opts) {
        std::vector<Scenario> cells;
        for (std::size_t n = 2; n <= opts.nmax && n <= 7; ++n) {
          cells.push_back(Scenario::symmetric(n, 1.0, 1.0).seed(opts.seed));
        }
        return cells;
      },
      EvalPlan{{EvalStep{"markov-structure", ""}}});
  if (!sweep.results) {
    return 0;  // --shard: partial written
  }
  const std::vector<ResultSet>& results = *sweep.results;

  TextTable table({"n", "full states (2^n+1)", "full transitions",
                   "lumped states (n+2)", "lumped transitions",
                   "E[X] full", "E[X] lumped"});
  for (std::size_t k = 0; k < results.size(); ++k) {
    const ResultSet& res = results[k];
    table.add_row(
        {TextTable::fmt_int(static_cast<long long>(sweep.cells[k].n())),
         TextTable::fmt_int(
             static_cast<long long>(res.value("full_states"))),
         TextTable::fmt_int(
             static_cast<long long>(res.value("full_transitions"))),
         TextTable::fmt_int(
             static_cast<long long>(res.value("lumped_states"))),
         TextTable::fmt_int(
             static_cast<long long>(res.value("lumped_transitions"))),
         TextTable::fmt(res.value("mean_interval_full"), 6),
         TextTable::fmt(res.value("mean_interval_lumped"), 6)});
  }
  std::printf("%s\n", table.render("Chain inventories (mu = lambda = 1)")
                           .c_str());

  // Figure 3: the simplified chain for n = 3, printed in full (small).
  std::printf("Figure 3 (simplified chain, n = 3) as DOT:\n%s\n",
              simplified_chain_dot(3, 1.0, 1.0).c_str());

  // Figure 2: the full chain for n = 3 - states named by their bit vector.
  std::printf("Figure 2 (full chain, n = 3) as DOT:\n%s\n",
              full_chain_dot(3, 1.0, 1.0).c_str());
  return 0;
}
