// FIG2/3 - regenerates the structure of the paper's Figure 2 (the full
// Markov model for three processes) and Figure 3 (the simplified lumped
// chain), as state/transition inventories plus GraphViz DOT dumps.
//
// The full chain for n processes has 2^n + 1 states (paper Section 2.3's
// numbering, OCR-garbled in the source; DESIGN.md decision #1); the lumped
// chain has n + 2.  Lumping exactness is a test invariant; here the
// structures themselves are printed for inspection.
#include <cstdio>
#include <string>

#include "core/api.h"

int main(int argc, char** argv) {
  using namespace rbx;
  const ExperimentOptions opts =
      ExperimentOptions::parse(argc, argv, /*samples=*/0, /*nmax=*/8);
  print_banner("FIG2/3", "Markov chain structure regeneration");

  TextTable table({"n", "full states (2^n+1)", "full transitions",
                   "lumped states (n+2)", "lumped transitions",
                   "E[X] full", "E[X] lumped"});
  for (std::size_t n = 2; n <= opts.nmax && n <= 7; ++n) {
    AsyncRbModel full(ProcessSetParams::symmetric(n, 1.0, 1.0));
    SymmetricAsyncModel lumped(n, 1.0, 1.0);
    std::size_t lumped_transitions =
        lumped.chain().generator().nonzeros() - (lumped.num_states() - 1);
    table.add_row(
        {TextTable::fmt_int(static_cast<long long>(n)),
         TextTable::fmt_int(static_cast<long long>(full.num_states())),
         TextTable::fmt_int(static_cast<long long>(full.transition_count())),
         TextTable::fmt_int(static_cast<long long>(lumped.num_states())),
         TextTable::fmt_int(static_cast<long long>(lumped_transitions)),
         TextTable::fmt(full.mean_interval(), 6),
         TextTable::fmt(lumped.mean_interval(), 6)});
  }
  std::printf("%s\n", table.render("Chain inventories (mu = lambda = 1)")
                           .c_str());

  // Figure 3: the simplified chain for n = 3, printed in full (small).
  SymmetricAsyncModel m3(3, 1.0, 1.0);
  const std::string fig3 = ctmc_to_dot(
      m3.chain(),
      [&m3](std::size_t s) {
        if (s == m3.entry_state()) {
          return std::string("S_r");
        }
        if (s == m3.absorbing_state()) {
          return std::string("S_r+1");
        }
        return "S~" + std::to_string(s - 1);
      },
      "figure3_simplified_n3");
  std::printf("Figure 3 (simplified chain, n = 3) as DOT:\n%s\n",
              fig3.c_str());

  // Figure 2: the full chain for n = 3 - states named by their bit vector.
  AsyncRbModel full3(ProcessSetParams::symmetric(3, 1.0, 1.0));
  const std::string fig2 = ctmc_to_dot(
      full3.chain(),
      [&full3](std::size_t s) {
        if (s == full3.entry_state()) {
          return std::string("S_r");
        }
        if (s == full3.absorbing_state()) {
          return std::string("S_r+1");
        }
        const std::size_t mask = full3.mask_of_state(s);
        std::string name = "(";
        for (std::size_t i = 0; i < 3; ++i) {
          name += (mask >> i) & 1 ? '1' : '0';
          if (i + 1 < 3) {
            name += ',';
          }
        }
        return name + ")";
      },
      "figure2_full_n3");
  std::printf("Figure 2 (full chain, n = 3) as DOT:\n%s\n", fig2.c_str());
  return 0;
}
