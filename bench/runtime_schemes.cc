// RT - runtime validation: the three schemes executed by real threads.
//
// The analytic models and the DES assume instantaneous protocol actions;
// this bench runs the thread-based runtime (src/runtime) under fault
// injection and reports the protocol-level counters: recoveries, rollback
// depth (in global event tickets), affected-set sizes, snapshot storage,
// orphan messages dropped and the verified invariants (restart-line
// consistency, bit-exact restores).
//
// The scheme x n grid is evaluated on the RuntimeBackend.  Each cell
// spawns its own process threads, so this bench defaults to one sweep
// worker (pass --threads=N to oversubscribe on purpose, or --workers=N
// for forked worker processes); counters vary run to run regardless
// (real scheduling).
#include <cstdio>
#include <vector>

#include "core/api.h"

namespace {

const char* scheme_name(rbx::SchemeKind scheme) {
  switch (scheme) {
    case rbx::SchemeKind::kAsynchronous:
      return "asynchronous";
    case rbx::SchemeKind::kSynchronized:
      return "synchronized";
    case rbx::SchemeKind::kPseudoRecoveryPoints:
      return "pseudo-RP";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rbx;
  const ExperimentOptions opts =
      ExperimentOptions::parse(argc, argv, /*samples=*/1500, /*nmax=*/4);
  print_banner("RT", "Thread runtime: protocol counters under faults");

  RuntimeWorkload workload;
  workload.steps = opts.samples;
  workload.message_probability = 0.4;
  workload.rp_probability = 0.06;
  workload.sync_period_steps = 60;

  std::vector<Scenario> cells;
  for (SchemeKind scheme :
       {SchemeKind::kAsynchronous, SchemeKind::kSynchronized,
        SchemeKind::kPseudoRecoveryPoints}) {
    for (std::size_t n = 3; n <= opts.nmax; ++n) {
      cells.push_back(Scenario::symmetric(n, 1.0, 1.0)
                          .scheme(scheme)
                          .seed(opts.seed + n)
                          .at_failure_probability(0.1)
                          .workload(workload));
    }
  }

  // Default of 1 sweep worker: each cell already runs n threads.
  SweepRunner runner(opts, /*default_threads=*/1);
  const auto sweep = runner.run(cells, runtime_backend());
  if (!sweep) {
    return 0;  // --shard: partial written
  }
  const std::vector<ResultSet>& results = *sweep;

  TextTable table({"scheme", "n", "recoveries", "rollback depth (mean)",
                   "affected (mean)", "orphans", "snapshots", "bytes",
                   "verified"});
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const ResultSet& r = results[k];
    const bool ok = r.value("completed") != 0.0 &&
                    r.value("restore_verified") != 0.0 &&
                    r.value("line_consistency_verified") != 0.0 &&
                    r.value("fifo_violations") == 0.0;
    const auto as_int = [&r](const char* name) {
      return TextTable::fmt_int(static_cast<long long>(r.value(name)));
    };
    table.add_row(
        {scheme_name(cells[k].scheme()),
         TextTable::fmt_int(static_cast<long long>(cells[k].n())),
         as_int("recoveries"),
         r.metric("rollback_depth").count > 0
             ? TextTable::fmt(r.value("rollback_depth"), 1)
             : std::string("-"),
         r.metric("affected_processes").count > 0
             ? TextTable::fmt(r.value("affected_processes"), 2)
             : std::string("-"),
         as_int("orphan_messages_dropped"), as_int("snapshots_retained"),
         as_int("snapshot_bytes"), ok ? "yes" : "NO"});
  }
  std::printf("%s\n",
              table.render("Runtime schemes (5% AT failure injection)")
                  .c_str());

  // Protocol cost detail for the synchronized scheme.
  RuntimeWorkload sync_workload;
  sync_workload.steps = opts.samples;
  sync_workload.sync_period_steps = 50;
  const Scenario sync_scenario = Scenario::symmetric(3, 1.0, 1.0)
                                     .scheme(SchemeKind::kSynchronized)
                                     .seed(opts.seed)
                                     .workload(sync_workload);
  const ResultSet r = runtime_backend().evaluate(sync_scenario);
  const Metric& polls = r.metric("sync_wait_polls");
  std::printf("Synchronized detail: %zu lines, %zu aborts, mean commit wait "
              "%.1f polls (max %.0f), %zu RPs (= 3 per line)\n",
              static_cast<std::size_t>(r.value("sync_lines")),
              static_cast<std::size_t>(r.value("sync_aborts")),
              polls.count > 0 ? polls.value : 0.0,
              r.value("sync_wait_polls_max"),
              static_cast<std::size_t>(r.value("rps")));
  std::printf(
      "\nReading: asynchronous rollback depth varies wildly (isolated\n"
      "failures are cheap, propagated ones spike and can domino) and the\n"
      "store accumulates every RP ever taken; PRP rollbacks are bounded\n"
      "(roughly one pseudo recovery line for everyone) with storage purged\n"
      "to a constant; the synchronized scheme replaces rollback depth by\n"
      "commit waiting (polls) and minimal storage - the paper's three-way\n"
      "trade-off, observed on real threads with verified restores.\n");
  return 0;
}
