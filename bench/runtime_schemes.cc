// RT - runtime validation: the three schemes executed by real threads.
//
// The analytic models and the DES assume instantaneous protocol actions;
// this bench runs the thread-based runtime (src/runtime) under fault
// injection and reports the protocol-level counters: recoveries, rollback
// depth (in global event tickets), affected-set sizes, snapshot storage,
// orphan messages dropped and the verified invariants (restart-line
// consistency, bit-exact restores).
#include <cstdio>

#include "core/api.h"

namespace {

const char* scheme_name(rbx::SchemeKind scheme) {
  switch (scheme) {
    case rbx::SchemeKind::kAsynchronous:
      return "asynchronous";
    case rbx::SchemeKind::kSynchronized:
      return "synchronized";
    case rbx::SchemeKind::kPseudoRecoveryPoints:
      return "pseudo-RP";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rbx;
  const ExperimentOptions opts =
      ExperimentOptions::parse(argc, argv, /*samples=*/1500, /*nmax=*/4);
  print_banner("RT", "Thread runtime: protocol counters under faults");

  TextTable table({"scheme", "n", "recoveries", "rollback depth (mean)",
                   "affected (mean)", "orphans", "snapshots", "bytes",
                   "verified"});
  for (SchemeKind scheme :
       {SchemeKind::kAsynchronous, SchemeKind::kSynchronized,
        SchemeKind::kPseudoRecoveryPoints}) {
    for (std::size_t n = 3; n <= opts.nmax; ++n) {
      RuntimeConfig cfg;
      cfg.num_processes = n;
      cfg.scheme = scheme;
      cfg.seed = opts.seed + n;
      cfg.steps = opts.samples;
      cfg.message_probability = 0.4;
      cfg.rp_probability = 0.06;
      cfg.at_failure_probability = 0.1;
      cfg.sync_period_steps = 60;
      RecoverySystem system(cfg);
      const RuntimeReport r = system.run();

      const bool ok = r.completed && r.restore_verified &&
                      r.line_consistency_verified &&
                      r.fifo_violations == 0;
      table.add_row(
          {scheme_name(scheme), TextTable::fmt_int(static_cast<long long>(n)),
           TextTable::fmt_int(static_cast<long long>(r.recoveries)),
           r.rollback_tickets.count() > 0
               ? TextTable::fmt(r.rollback_tickets.mean(), 1)
               : std::string("-"),
           r.affected_processes.count() > 0
               ? TextTable::fmt(r.affected_processes.mean(), 2)
               : std::string("-"),
           TextTable::fmt_int(
               static_cast<long long>(r.orphan_messages_dropped)),
           TextTable::fmt_int(static_cast<long long>(r.snapshots_retained)),
           TextTable::fmt_int(static_cast<long long>(r.snapshot_bytes)),
           ok ? "yes" : "NO"});
    }
  }
  std::printf("%s\n",
              table.render("Runtime schemes (5% AT failure injection)")
                  .c_str());

  // Protocol cost detail for the synchronized scheme.
  RuntimeConfig cfg;
  cfg.num_processes = 3;
  cfg.scheme = SchemeKind::kSynchronized;
  cfg.seed = opts.seed;
  cfg.steps = opts.samples;
  cfg.sync_period_steps = 50;
  RecoverySystem system(cfg);
  const RuntimeReport r = system.run();
  std::printf("Synchronized detail: %zu lines, %zu aborts, mean commit wait "
              "%.1f polls (max %.0f), %zu RPs (= 3 per line)\n",
              r.sync_lines, r.sync_aborts,
              r.sync_wait_polls.count() ? r.sync_wait_polls.mean() : 0.0,
              r.sync_wait_polls.count() ? r.sync_wait_polls.max() : 0.0,
              r.rps);
  std::printf(
      "\nReading: asynchronous rollback depth varies wildly (isolated\n"
      "failures are cheap, propagated ones spike and can domino) and the\n"
      "store accumulates every RP ever taken; PRP rollbacks are bounded\n"
      "(roughly one pseudo recovery line for everyone) with storage purged\n"
      "to a constant; the synchronized scheme replaces rollback depth by\n"
      "commit waiting (polls) and minimal storage - the paper's three-way\n"
      "trade-off, observed on real threads with verified restores.\n");
  return 0;
}
