// FIG5 - reproduces the paper's Figure 5: mean of X (the interval between
// successive recovery lines) as a function of the number of processes n.
//
// Setup per the figure caption: mu_i = 1.0 for every process, lambda_ij =
// lambda for every pair, and rho = (sum lambda_ij) / (sum mu_k) held at a
// chosen level.  The paper draws a single curve rising "drastically" over
// n = 2..5; we print the curve at several rho levels and cross-check the
// simplified R1'-R4' chain against the full 2^n + 1 state model and a
// Monte-Carlo run.
//
// Grid cells are evaluated concurrently (--threads=N in-process,
// --workers=N forked processes, --connect=host:port,... on remote worker
// daemons, --shard=i/k across hosts + --merge); the per-cell seeds
// reproduce the original sequential loop, so the printed values are
// identical under every execution mode.
#include <algorithm>
#include <cstdio>
#include <iterator>
#include <vector>

#include "bench_main.h"

int main(int argc, char** argv) {
  using namespace rbx;

  static const double rho_levels[] = {0.5, 1.0, 2.0};
  // An evaluation plan instead of a closure, so the cells can also run on
  // remote sweep_workerd daemons (--connect / --fleet).
  bench::SweepOutcome sweep = bench::run_sweep(
      argc, argv,
      {"FIG5", "Figure 5: E[X] vs number of processes n",
       /*samples=*/20000, /*nmax=*/9},
      [](const ExperimentOptions& opts) {
        std::vector<Scenario> cells;
        for (double rho : rho_levels) {
          for (std::size_t n = 2; n <= opts.nmax; ++n) {
            // rho = C(n,2) lambda / n  =>  lambda = 2 rho / (n - 1).
            const double lambda = bench::lambda_for_rho(n, rho);
            cells.push_back(Scenario::symmetric(n, 1.0, lambda)
                                .seed(opts.seed + n)
                                .samples(std::max<std::size_t>(
                                    1, opts.samples / (n >= 5 ? 4 : 1))));
          }
        }
        return cells;
      },
      [](const Scenario& s, std::size_t) {
        EvalPlan plan{{EvalStep{"analytic", ""}}};
        if (s.n() <= 6) {
          plan.steps.push_back(EvalStep{"monte-carlo", "mc_"});
        }
        return plan;
      });
  if (!sweep.results) {
    return 0;  // --shard: partial written
  }
  const std::vector<Scenario>& cells = sweep.cells;
  const std::vector<ResultSet>& results = *sweep.results;

  const std::size_t per_rho = cells.size() / std::size(rho_levels);
  for (std::size_t r = 0; r < std::size(rho_levels); ++r) {
    TextTable table({"n", "lambda", "E[X] (lumped)", "E[X] (full model)",
                     "E[X] (monte-carlo)", "sd[X]"});
    for (std::size_t k = 0; k < per_rho; ++k) {
      const Scenario& s = cells[r * per_rho + k];
      const ResultSet& res = results[r * per_rho + k];
      const std::size_t n = s.n();

      std::string full = "-";
      if (res.value_or("async_full_chain", 0.0) != 0.0) {
        full = TextTable::fmt(res.value("mean_interval_x"), 4);
      }
      std::string mc = "-";
      if (res.has("mc_mean_interval_x")) {
        const Metric& m = res.metric("mc_mean_interval_x");
        mc = fmt_ci(m.value, m.half_width);
      }
      table.add_row({TextTable::fmt_int(static_cast<long long>(n)),
                     TextTable::fmt(s.params().lambda(0, 1), 3),
                     TextTable::fmt(res.value("mean_interval_x_lumped"), 4),
                     full, mc,
                     TextTable::fmt(res.value("stddev_interval_x_lumped"),
                                    3)});
    }
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Figure 5 reproduction at rho = %.2f (mu = 1.0)",
                  rho_levels[r]);
    std::printf("%s\n", table.render(title).c_str());
  }
  std::printf(
      "Shape check: at fixed rho the mean interval grows sharply with n\n"
      "(the paper: 'X increases drastically when there is an increase in\n"
      "the number of processes involved').\n");
  return 0;
}
