// FIG5 - reproduces the paper's Figure 5: mean of X (the interval between
// successive recovery lines) as a function of the number of processes n.
//
// Setup per the figure caption: mu_i = 1.0 for every process, lambda_ij =
// lambda for every pair, and rho = (sum lambda_ij) / (sum mu_k) held at a
// chosen level.  The paper draws a single curve rising "drastically" over
// n = 2..5; we print the curve at several rho levels and cross-check the
// simplified R1'-R4' chain against the full 2^n + 1 state model and a
// Monte-Carlo run.
#include <cmath>
#include <cstdio>

#include "core/api.h"

int main(int argc, char** argv) {
  using namespace rbx;
  const ExperimentOptions opts =
      ExperimentOptions::parse(argc, argv, /*samples=*/20000, /*nmax=*/9);
  print_banner("FIG5", "Figure 5: E[X] vs number of processes n");

  const double rho_levels[] = {0.5, 1.0, 2.0};
  for (double rho : rho_levels) {
    TextTable table({"n", "lambda", "E[X] (lumped)", "E[X] (full model)",
                     "E[X] (monte-carlo)", "sd[X]"});
    for (std::size_t n = 2; n <= opts.nmax; ++n) {
      // rho = C(n,2) lambda / n  =>  lambda = 2 rho / (n - 1).
      const double nd = static_cast<double>(n);
      const double lambda = 2.0 * rho / (nd - 1.0);
      SymmetricAsyncModel lumped(n, 1.0, lambda);

      std::string full = "-";
      if (n <= 7) {
        AsyncRbModel model(ProcessSetParams::symmetric(n, 1.0, lambda));
        full = TextTable::fmt(model.mean_interval(), 4);
      }
      std::string mc = "-";
      if (n <= 6) {
        AsyncRbSimulator sim(ProcessSetParams::symmetric(n, 1.0, lambda),
                             opts.seed + n);
        const AsyncSimResult r =
            sim.run_lines(opts.samples / (n >= 5 ? 4 : 1));
        mc = fmt_ci(r.interval.mean(), r.interval.ci_half_width());
      }
      table.add_row({TextTable::fmt_int(static_cast<long long>(n)),
                     TextTable::fmt(lambda, 3),
                     TextTable::fmt(lumped.mean_interval(), 4), full, mc,
                     TextTable::fmt(std::sqrt(lumped.variance_interval()),
                                    3)});
    }
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Figure 5 reproduction at rho = %.2f (mu = 1.0)", rho);
    std::printf("%s\n", table.render(title).c_str());
  }
  std::printf(
      "Shape check: at fixed rho the mean interval grows sharply with n\n"
      "(the paper: 'X increases drastically when there is an increase in\n"
      "the number of processes involved').\n");
  return 0;
}
