// ABL-LINE - ablation of the paper's recovery-line criterion.
//
// The Section 2 Markov model declares a new recovery line only when every
// process's most recent action is a recovery point (return to the all-ones
// state).  Under the paper's own pairwise definition, lines can also form
// from mixtures of old and new RPs (an interaction between P_i and P_j
// does not invalidate combinations avoiding that pair), so the model is
// conservative for n >= 3 and exact for n = 2 (DESIGN.md decision #6).
//
// This bench quantifies the gap on a shared event stream:
//   model        E[X] of the all-ones criterion (analytic + simulated)
//   any-advance  mean interval between advancements of the true maximal
//                line (any component moves)
//   full-refresh mean interval until every component is strictly newer
//
// Each (n, rho) point is one sweep cell evaluated through the registered
// "line-exact" backend (core/ablation_backend.h), seeded exactly as the
// original sequential loop, so the table is byte-identical under every
// execution mode.
#include <cstdint>
#include <cstdio>
#include <iterator>

#include "bench_main.h"

int main(int argc, char** argv) {
  using namespace rbx;

  static const double rho_levels[] = {0.5, 1.0, 2.0};
  bench::SweepOutcome sweep = bench::run_sweep(
      argc, argv,
      {"ABL-LINE",
       "Model's all-ones criterion vs exact pairwise recovery lines",
       /*samples=*/60000, /*nmax=*/4},
      [](const ExperimentOptions& opts) {
        std::vector<Scenario> cells;
        for (std::size_t n = 2; n <= opts.nmax; ++n) {
          for (double rho : rho_levels) {
            cells.push_back(
                Scenario::symmetric(n, 1.0, bench::lambda_for_rho(n, rho))
                    .seed(opts.seed + n * 31 +
                          static_cast<std::uint64_t>(rho * 8))
                    .samples(opts.samples));
          }
        }
        return cells;
      },
      EvalPlan{{EvalStep{"line-exact", ""}}});
  if (!sweep.results) {
    return 0;  // --shard: partial written
  }
  const std::vector<ResultSet>& results = *sweep.results;

  TextTable table({"n", "rho", "E[X] model (analytic)", "model (mc)",
                   "exact any-advance", "conservatism", "full-refresh"});
  for (std::size_t k = 0; k < results.size(); ++k) {
    const Scenario& s = sweep.cells[k];
    const ResultSet& res = results[k];
    const Metric& model_mc = res.metric("model_interval");
    const Metric& any = res.metric("any_advance");
    const Metric& refresh = res.metric("full_refresh");
    table.add_row(
        {TextTable::fmt_int(static_cast<long long>(s.n())),
         TextTable::fmt(rho_levels[k % std::size(rho_levels)], 2),
         TextTable::fmt(res.value("model_interval_analytic"), 4),
         fmt_ci(model_mc.value, model_mc.half_width),
         fmt_ci(any.value, any.half_width),
         TextTable::fmt(res.value("line_conservatism"), 3),
         fmt_ci(refresh.value, refresh.half_width)});
  }
  std::printf("%s\n",
              table.render("Recovery-line criteria on shared event streams")
                  .c_str());
  std::printf(
      "Reading: conservatism = model / any-advance. 1.0 at n = 2 (the\n"
      "criteria coincide); grows with n and rho as mixed old/new-RP lines\n"
      "become common. The model's X is an upper bound on the real interval\n"
      "between usable recovery lines - consistent with the paper's use of\n"
      "X as 'an upper bound for the real rollback distance'.\n");
  return 0;
}
