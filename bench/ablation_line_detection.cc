// ABL-LINE - ablation of the paper's recovery-line criterion.
//
// The Section 2 Markov model declares a new recovery line only when every
// process's most recent action is a recovery point (return to the all-ones
// state).  Under the paper's own pairwise definition, lines can also form
// from mixtures of old and new RPs (an interaction between P_i and P_j
// does not invalidate combinations avoiding that pair), so the model is
// conservative for n >= 3 and exact for n = 2 (DESIGN.md decision #6).
//
// This bench quantifies the gap on a shared event stream:
//   model        E[X] of the all-ones criterion (analytic + simulated)
//   any-advance  mean interval between advancements of the true maximal
//                line (any component moves)
//   full-refresh mean interval until every component is strictly newer
#include <cstdio>

#include "core/api.h"

int main(int argc, char** argv) {
  using namespace rbx;
  const ExperimentOptions opts =
      ExperimentOptions::parse(argc, argv, /*samples=*/60000, /*nmax=*/4);
  print_banner("ABL-LINE",
               "Model's all-ones criterion vs exact pairwise recovery lines");

  TextTable table({"n", "rho", "E[X] model (analytic)", "model (mc)",
                   "exact any-advance", "conservatism", "full-refresh"});
  for (std::size_t n = 2; n <= opts.nmax; ++n) {
    for (double rho : {0.5, 1.0, 2.0}) {
      const double nd = static_cast<double>(n);
      const double lambda = 2.0 * rho / (nd - 1.0);
      const auto params = ProcessSetParams::symmetric(n, 1.0, lambda);
      SymmetricAsyncModel model(n, 1.0, lambda);

      AsyncRbSimulator sim(params, opts.seed + n * 31 +
                                       static_cast<std::uint64_t>(rho * 8));
      const ExactLineResult r = sim.run_exact(opts.samples);
      const double ratio = r.any_advance.count() > 0
                               ? r.model_interval.mean() /
                                     r.any_advance.mean()
                               : 0.0;
      table.add_row(
          {TextTable::fmt_int(static_cast<long long>(n)),
           TextTable::fmt(rho, 2),
           TextTable::fmt(model.mean_interval(), 4),
           fmt_ci(r.model_interval.mean(),
                  r.model_interval.ci_half_width()),
           fmt_ci(r.any_advance.mean(), r.any_advance.ci_half_width()),
           TextTable::fmt(ratio, 3),
           fmt_ci(r.full_refresh.mean(), r.full_refresh.ci_half_width())});
    }
  }
  std::printf("%s\n",
              table.render("Recovery-line criteria on shared event streams")
                  .c_str());
  std::printf(
      "Reading: conservatism = model / any-advance. 1.0 at n = 2 (the\n"
      "criteria coincide); grows with n and rho as mixed old/new-RP lines\n"
      "become common. The model's X is an upper bound on the real interval\n"
      "between usable recovery lines - consistent with the paper's use of\n"
      "X as 'an upper bound for the real rollback distance'.\n");
  return 0;
}
