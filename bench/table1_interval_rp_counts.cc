// TAB1 - reproduces the paper's Table 1: mean values of X and L_i for the
// five (mu, lambda) cases at constant rho = 1.
//
// Columns:
//   paper        the value printed in the 1983 table (their simulation)
//   analytic     exact value from the rule R1-R4 chain (this library)
//   monte-carlo  this library's simulation of the Section 2.1 process
//
// Findings reproduced (see EXPERIMENTS.md):
//  * the paper's E(L_i) rows equal mu_i * E[X] exactly, confirming the
//    counting convention and the chain;
//  * the paper's E(X) row is its (noisier) simulation estimate, ~4% above
//    the exact mean;
//  * case 5's printed E(L2) = 3.111 is a typo for 3.311 (the column sum
//    9.933 only works with 3.311 = mu_2 * E[X]).
//
// The five cases run concurrently with the per-case seeds of the original
// sequential loop (opts.seed + k * 0x9e3779b9), keeping the Monte-Carlo
// columns identical at any --threads/--workers/--shard split.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_main.h"

namespace {

struct Table1Case {
  const char* label;
  double mu1, mu2, mu3;
  double l12, l23, l13;
  double paper_ex;
  double paper_l1, paper_l2, paper_l3;
};

// Values transcribed from the paper's Table 1.
const Table1Case kCases[] = {
    {"1", 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.598, 2.500, 2.500, 2.500},
    {"2", 1.5, 1.0, 0.5, 1.0, 1.0, 1.0, 3.357, 4.847, 3.231, 1.616},
    {"3", 1.0, 1.0, 1.0, 1.5, 0.5, 1.0, 2.600, 2.453, 2.453, 2.453},
    {"4", 1.5, 1.0, 0.5, 1.5, 0.5, 1.0, 3.203, 4.533, 3.022, 1.511},
    // E(L2) printed as 3.111 in the paper; 3.311 restores the row sum.
    {"5", 1.5, 1.0, 0.5, 0.5, 1.5, 1.0, 3.354, 4.967, 3.311, 1.656},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rbx;
  // Plan instead of closure: every case evaluates the exact chain, then
  // merges the Monte-Carlo run - locally or on --connect workers.
  bench::SweepOutcome sweep = bench::run_sweep(
      argc, argv,
      {"TAB1", "Table 1: E[X] and E[L_i] for five rate cases at rho = 1",
       /*samples=*/150000, /*nmax=*/0},
      [](const ExperimentOptions& opts) {
        // A distinct stream per case keeps the Monte-Carlo columns
        // statistically independent across rows.
        std::vector<Scenario> cells;
        std::uint64_t case_seed = opts.seed;
        for (const Table1Case& c : kCases) {
          cells.push_back(
              Scenario(ProcessSetParams::three(c.mu1, c.mu2, c.mu3, c.l12,
                                               c.l23, c.l13))
                  .seed(case_seed += 0x9e3779b9)
                  .samples(opts.samples));
        }
        return cells;
      },
      EvalPlan{{EvalStep{"analytic", ""}, EvalStep{"monte-carlo", "mc_"}}});
  if (!sweep.results) {
    return 0;  // --shard: partial written
  }
  const std::vector<ResultSet>& results = *sweep.results;

  TextTable table({"case", "quantity", "paper", "analytic", "monte-carlo",
                   "mc-dev"});
  for (std::size_t k = 0; k < results.size(); ++k) {
    const Table1Case& c = kCases[k];
    const ResultSet& res = results[k];
    const Metric& mc_x = res.metric("mc_mean_interval_x");
    table.add_row({c.label, "E[X]", TextTable::fmt(c.paper_ex, 3),
                   TextTable::fmt(res.value("mean_interval_x"), 4),
                   fmt_ci(mc_x.value, mc_x.half_width),
                   fmt_dev(mc_x.value, res.value("mean_interval_x"))});
    const double paper_l[3] = {c.paper_l1, c.paper_l2, c.paper_l3};
    for (std::size_t i = 0; i < 3; ++i) {
      const double wald = res.value(indexed_metric("rp_count_", i));
      const Metric& mc_l = res.metric(indexed_metric("mc_rp_count_", i));
      char q[16];
      std::snprintf(q, sizeof(q), "E[L%zu]", i + 1);
      table.add_row({c.label, q, TextTable::fmt(paper_l[i], 3),
                     TextTable::fmt(wald, 4),
                     fmt_ci(mc_l.value, mc_l.half_width),
                     fmt_dev(mc_l.value, wald)});
    }
    double sum_wald = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      sum_wald += res.value(indexed_metric("rp_count_", i));
    }
    table.add_row({c.label, "sum E[L]",
                   TextTable::fmt(c.paper_l1 + c.paper_l2 + c.paper_l3, 3),
                   TextTable::fmt(sum_wald, 4), "-", "-"});
  }
  std::printf("%s\n", table.render("Table 1 reproduction").c_str());

  // Secondary table: the three L_i counting conventions (DESIGN.md
  // interpretation decision #4) for case 2, illustrating why the Wald
  // convention is the paper's.
  TextTable conv({"case-2 process", "incl. final (a)", "excl. final (b)",
                  "state-changing (c)", "paper"});
  const ResultSet& case2 = results[1];
  const double paper2[3] = {4.847, 3.231, 1.616};
  for (std::size_t i = 0; i < 3; ++i) {
    char p[8];
    std::snprintf(p, sizeof(p), "P%zu", i + 1);
    conv.add_row(
        {p, TextTable::fmt(case2.value(indexed_metric("rp_count_", i)), 4),
         TextTable::fmt(case2.value(indexed_metric("rp_count_excl_", i)), 4),
         TextTable::fmt(case2.value(indexed_metric("rp_count_statechg_", i)),
                        4),
         TextTable::fmt(paper2[i], 3)});
  }
  std::printf("%s\n",
              conv.render("L_i counting conventions (case 2)").c_str());
  std::printf("Convention (a) matches the paper's E(L_i) to all printed "
              "digits.\n");
  return 0;
}
