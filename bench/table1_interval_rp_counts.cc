// TAB1 - reproduces the paper's Table 1: mean values of X and L_i for the
// five (mu, lambda) cases at constant rho = 1.
//
// Columns:
//   paper        the value printed in the 1983 table (their simulation)
//   analytic     exact value from the rule R1-R4 chain (this library)
//   monte-carlo  this library's simulation of the Section 2.1 process
//
// Findings reproduced (see EXPERIMENTS.md):
//  * the paper's E(L_i) rows equal mu_i * E[X] exactly, confirming the
//    counting convention and the chain;
//  * the paper's E(X) row is its (noisier) simulation estimate, ~4% above
//    the exact mean;
//  * case 5's printed E(L2) = 3.111 is a typo for 3.311 (the column sum
//    9.933 only works with 3.311 = mu_2 * E[X]).
#include <cstdio>

#include "core/api.h"

namespace {

struct Table1Case {
  const char* label;
  double mu1, mu2, mu3;
  double l12, l23, l13;
  double paper_ex;
  double paper_l1, paper_l2, paper_l3;
};

// Values transcribed from the paper's Table 1.
const Table1Case kCases[] = {
    {"1", 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.598, 2.500, 2.500, 2.500},
    {"2", 1.5, 1.0, 0.5, 1.0, 1.0, 1.0, 3.357, 4.847, 3.231, 1.616},
    {"3", 1.0, 1.0, 1.0, 1.5, 0.5, 1.0, 2.600, 2.453, 2.453, 2.453},
    {"4", 1.5, 1.0, 0.5, 1.5, 0.5, 1.0, 3.203, 4.533, 3.022, 1.511},
    // E(L2) printed as 3.111 in the paper; 3.311 restores the row sum.
    {"5", 1.5, 1.0, 0.5, 0.5, 1.5, 1.0, 3.354, 4.967, 3.311, 1.656},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rbx;
  const ExperimentOptions opts =
      ExperimentOptions::parse(argc, argv, /*samples=*/150000, /*nmax=*/0);
  print_banner("TAB1",
               "Table 1: E[X] and E[L_i] for five rate cases at rho = 1");

  TextTable table({"case", "quantity", "paper", "analytic", "monte-carlo",
                   "mc-dev"});
  std::uint64_t case_seed = opts.seed;
  for (const Table1Case& c : kCases) {
    const auto params =
        ProcessSetParams::three(c.mu1, c.mu2, c.mu3, c.l12, c.l23, c.l13);
    AsyncRbModel model(params);
    // A distinct stream per case keeps the Monte-Carlo columns
    // statistically independent across rows.
    AsyncRbSimulator sim(params, case_seed += 0x9e3779b9);
    const AsyncSimResult mc = sim.run_lines(opts.samples);

    table.add_row({c.label, "E[X]", TextTable::fmt(c.paper_ex, 3),
                   TextTable::fmt(model.mean_interval(), 4),
                   fmt_ci(mc.interval.mean(), mc.interval.ci_half_width()),
                   fmt_dev(mc.interval.mean(), model.mean_interval())});
    const double paper_l[3] = {c.paper_l1, c.paper_l2, c.paper_l3};
    for (std::size_t i = 0; i < 3; ++i) {
      const auto counts = model.expected_rp_count(i);
      char q[16];
      std::snprintf(q, sizeof(q), "E[L%zu]", i + 1);
      table.add_row(
          {c.label, q, TextTable::fmt(paper_l[i], 3),
           TextTable::fmt(counts.wald, 4),
           fmt_ci(mc.rp_incl_final[i].mean(),
                  mc.rp_incl_final[i].ci_half_width()),
           fmt_dev(mc.rp_incl_final[i].mean(), counts.wald)});
    }
    double sum_wald = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      sum_wald += model.expected_rp_count(i).wald;
    }
    table.add_row({c.label, "sum E[L]",
                   TextTable::fmt(c.paper_l1 + c.paper_l2 + c.paper_l3, 3),
                   TextTable::fmt(sum_wald, 4), "-", "-"});
  }
  std::printf("%s\n", table.render("Table 1 reproduction").c_str());

  // Secondary table: the three L_i counting conventions (DESIGN.md
  // interpretation decision #4) for case 2, illustrating why the Wald
  // convention is the paper's.
  TextTable conv({"case-2 process", "incl. final (a)", "excl. final (b)",
                  "state-changing (c)", "paper"});
  const auto params2 = ProcessSetParams::three(1.5, 1.0, 0.5, 1, 1, 1);
  AsyncRbModel model2(params2);
  const double paper2[3] = {4.847, 3.231, 1.616};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto counts = model2.expected_rp_count(i);
    char p[8];
    std::snprintf(p, sizeof(p), "P%zu", i + 1);
    conv.add_row({p, TextTable::fmt(counts.wald, 4),
                  TextTable::fmt(counts.excluding_final, 4),
                  TextTable::fmt(counts.state_changing, 4),
                  TextTable::fmt(paper2[i], 3)});
  }
  std::printf("%s\n",
              conv.render("L_i counting conventions (case 2)").c_str());
  std::printf("Convention (a) matches the paper's E(L_i) to all printed "
              "digits.\n");
  return 0;
}
