// SEC4-PRP - reproduces Section 4's overhead and rollback analysis of
// pseudo recovery points:
//
//  * n states saved per recovery point (1 RP + n-1 PRPs), purged down to
//    the newest pseudo recovery lines;
//  * (n-1) t_r additional recording time per RP;
//  * rollback distance bounded by sup{y_1..y_n}, y_i ~ Exp(mu_i);
//  * and the paper's qualitative claim: PRPs give "the shortest rollback
//    distance ... without synchronization" - validated by a paired
//    Monte-Carlo comparison of PRP vs plain asynchronous rollback on
//    identical failure histories.
#include <cstdio>

#include "core/api.h"

int main(int argc, char** argv) {
  using namespace rbx;
  const ExperimentOptions opts =
      ExperimentOptions::parse(argc, argv, /*samples=*/2000, /*nmax=*/8);
  print_banner("SEC4-PRP", "Section 4: pseudo recovery point overheads");

  // --- analytic overhead vs process count ---
  constexpr double kRecordTime = 0.01;
  TextTable overhead({"n", "states/RP", "time/RP ((n-1)t_r)",
                      "snapshot rate/proc", "E[sup y] bound",
                      "recording fraction"});
  for (std::size_t n = 2; n <= opts.nmax; ++n) {
    PrpModel model(ProcessSetParams::symmetric(n, 1.0, 1.0), kRecordTime);
    overhead.add_row(
        {TextTable::fmt_int(static_cast<long long>(n)),
         TextTable::fmt_int(static_cast<long long>(model.snapshots_per_rp())),
         TextTable::fmt(model.time_overhead_per_rp(), 3),
         TextTable::fmt(model.snapshot_rate(0), 2),
         TextTable::fmt(model.mean_rollback_bound(), 4),
         TextTable::fmt(model.recording_fraction(0), 4)});
  }
  std::printf("%s\n",
              overhead
                  .render("Overheads (mu = lambda = 1, t_r = 0.01; paper "
                          "Section 4)")
                  .c_str());

  // --- paired rollback-distance comparison on the Table 1 cases ---
  struct Case {
    const char* label;
    double mu1, mu2, mu3, l12, l23, l13;
  };
  const Case cases[] = {
      {"tab1-1", 1.0, 1.0, 1.0, 1.0, 1.0, 1.0},
      {"tab1-2", 1.5, 1.0, 0.5, 1.0, 1.0, 1.0},
      {"tab1-5", 1.5, 1.0, 0.5, 0.5, 1.5, 1.0},
      {"hot", 0.5, 0.5, 0.5, 3.0, 3.0, 3.0},
  };
  TextTable cmp({"case", "E[sup y] bound", "PRP dist (mc)", "PRP p95",
                 "async dist (mc)", "async p95", "async domino",
                 "PRP iter max"});
  for (const Case& c : cases) {
    const auto params =
        ProcessSetParams::three(c.mu1, c.mu2, c.mu3, c.l12, c.l23, c.l13);
    PrpModel model(params, kRecordTime);
    PrpSimParams sp;
    sp.t_record = 1e-4;
    sp.error_rate = 0.25;
    PrpSimulator sim(params, sp, opts.seed);
    const PrpSimResult r = sim.run(opts.samples);
    char domino[32];
    std::snprintf(domino, sizeof(domino), "%zu/%zu", r.async_domino_count,
                  r.failures);
    cmp.add_row({c.label, TextTable::fmt(model.mean_rollback_bound(), 3),
                 fmt_ci(r.prp_distance.mean(),
                        r.prp_distance.ci_half_width(), 3),
                 TextTable::fmt(r.prp_distance.quantile(0.95), 3),
                 fmt_ci(r.async_distance.mean(),
                        r.async_distance.ci_half_width(), 3),
                 TextTable::fmt(r.async_distance.quantile(0.95), 3), domino,
                 TextTable::fmt(r.prp_iterations.max(), 0)});
  }
  std::printf(
      "%s\n",
      cmp.render("Rollback distance: PRP scheme vs asynchronous RBs "
                 "(paired failures)")
          .c_str());

  // --- storage accounting from the simulator ---
  const auto params = ProcessSetParams::three(1.0, 1.0, 1.0, 1, 1, 1);
  PrpSimParams sp;
  sp.t_record = 1e-4;
  sp.error_rate = 0.1;
  PrpSimulator sim(params, sp, opts.seed + 1);
  const PrpSimResult r = sim.run(opts.samples / 2);
  std::printf("Storage (n = 3, mu = 1): snapshots/time = %.3f "
              "(model n*sum(mu) = %.1f reduced by failed ATs), RP rate = "
              "%.3f, recording fraction = %.5f, clean restarts verified: "
              "%zu contaminated of %zu failures\n",
              r.snapshots_per_unit_time, 9.0, r.rp_per_unit_time,
              r.recording_time_fraction, r.contaminated_restarts,
              r.failures);
  std::printf(
      "\nShape check: PRP mean distance tracks E[sup y] and stays bounded\n"
      "while the asynchronous distance grows with interaction density and\n"
      "regularly dominoes - the paper's Section 4 trade-off.\n");
  return 0;
}
