// SEC4-PRP - reproduces Section 4's overhead and rollback analysis of
// pseudo recovery points:
//
//  * n states saved per recovery point (1 RP + n-1 PRPs), purged down to
//    the newest pseudo recovery lines;
//  * (n-1) t_r additional recording time per RP;
//  * rollback distance bounded by sup{y_1..y_n}, y_i ~ Exp(mu_i);
//  * and the paper's qualitative claim: PRPs give "the shortest rollback
//    distance ... without synchronization" - validated by a paired
//    Monte-Carlo comparison of PRP vs plain asynchronous rollback on
//    identical failure histories.
//
// The Monte-Carlo cases run concurrently with the seeds of the original
// sequential loop; printed values are invariant under --threads,
// --workers and --shard splits.  Two grids, one bench::Bench: its
// SweepRunner persists across both sweeps so --shard writes one partial
// section per grid.
#include <algorithm>
#include <cstdio>
#include <iterator>
#include <vector>

#include "bench_main.h"

int main(int argc, char** argv) {
  using namespace rbx;
  bench::Bench bench(
      argc, argv,
      {"SEC4-PRP", "Section 4: pseudo recovery point overheads",
       /*samples=*/2000, /*nmax=*/8});
  const ExperimentOptions& opts = bench.opts();

  // --- analytic overhead vs process count ---
  constexpr double kRecordTime = 0.01;
  std::vector<Scenario> overhead_cells;
  for (std::size_t n = 2; n <= opts.nmax; ++n) {
    overhead_cells.push_back(Scenario::symmetric(n, 1.0, 1.0)
                                 .scheme(SchemeKind::kPseudoRecoveryPoints)
                                 .t_record(kRecordTime));
  }
  const auto overhead_sweep = bench.run(overhead_cells, analytic_backend());

  // --- paired rollback-distance comparison on the Table 1 cases ---
  struct Case {
    const char* label;
    double mu1, mu2, mu3, l12, l23, l13;
  };
  const Case cases[] = {
      {"tab1-1", 1.0, 1.0, 1.0, 1.0, 1.0, 1.0},
      {"tab1-2", 1.5, 1.0, 0.5, 1.0, 1.0, 1.0},
      {"tab1-5", 1.5, 1.0, 0.5, 0.5, 1.5, 1.0},
      {"hot", 0.5, 0.5, 0.5, 3.0, 3.0, 3.0},
  };
  std::vector<Scenario> mc_cells;
  for (const Case& c : cases) {
    mc_cells.push_back(
        Scenario(ProcessSetParams::three(c.mu1, c.mu2, c.mu3, c.l12, c.l23,
                                         c.l13))
            .scheme(SchemeKind::kPseudoRecoveryPoints)
            .t_record(1e-4)
            .error_rate(0.25)
            .seed(opts.seed)
            .samples(opts.samples));
  }
  // The storage-accounting run rides in the same batch (last cell).
  mc_cells.push_back(Scenario(ProcessSetParams::three(1.0, 1.0, 1.0, 1, 1, 1))
                         .scheme(SchemeKind::kPseudoRecoveryPoints)
                         .t_record(1e-4)
                         .error_rate(0.1)
                         .seed(opts.seed + 1)
                         .samples(std::max<std::size_t>(1, opts.samples / 2)));
  const auto mc_sweep =
      bench.run(mc_cells, [&cases](const Scenario&, std::size_t i) {
        // Only the comparison cases read exact_* metrics; the trailing
        // storage cell needs none.  The plan varies along the grid, which
        // is why plans are per-cell.
        EvalPlan plan{{EvalStep{"monte-carlo", ""}}};
        if (i < std::size(cases)) {
          plan.steps.push_back(EvalStep{"analytic", "exact_"});
        }
        return plan;
      });
  if (!overhead_sweep) {
    return 0;  // --shard: partials for both sweeps written
  }
  const std::vector<ResultSet>& overhead_results = *overhead_sweep;
  const std::vector<ResultSet>& mc_results = *mc_sweep;

  TextTable overhead({"n", "states/RP", "time/RP ((n-1)t_r)",
                      "snapshot rate/proc", "E[sup y] bound",
                      "recording fraction"});
  for (std::size_t k = 0; k < overhead_cells.size(); ++k) {
    const ResultSet& res = overhead_results[k];
    overhead.add_row(
        {TextTable::fmt_int(static_cast<long long>(k + 2)),
         TextTable::fmt_int(
             static_cast<long long>(res.value("prp_snapshots_per_rp"))),
         TextTable::fmt(res.value("prp_time_overhead_per_rp"), 3),
         TextTable::fmt(res.value("prp_snapshot_rate"), 2),
         TextTable::fmt(res.value("prp_mean_rollback_bound"), 4),
         TextTable::fmt(res.value("prp_recording_fraction_1"), 4)});
  }
  std::printf("%s\n",
              overhead
                  .render("Overheads (mu = lambda = 1, t_r = 0.01; paper "
                          "Section 4)")
                  .c_str());

  TextTable cmp({"case", "E[sup y] bound", "PRP dist (mc)", "PRP p95",
                 "async dist (mc)", "async p95", "async domino",
                 "PRP iter max"});
  for (std::size_t k = 0; k < std::size(cases); ++k) {
    const ResultSet& res = mc_results[k];
    const Metric& prp_d = res.metric("prp_distance");
    const Metric& async_d = res.metric("async_distance");
    char domino[32];
    std::snprintf(domino, sizeof(domino), "%zu/%zu",
                  static_cast<std::size_t>(res.value("async_domino_count")),
                  static_cast<std::size_t>(res.value("failures")));
    cmp.add_row({cases[k].label,
                 TextTable::fmt(res.value("exact_prp_mean_rollback_bound"),
                                3),
                 fmt_ci(prp_d.value, prp_d.half_width, 3),
                 TextTable::fmt(res.value("prp_distance_p95"), 3),
                 fmt_ci(async_d.value, async_d.half_width, 3),
                 TextTable::fmt(res.value("async_distance_p95"), 3), domino,
                 TextTable::fmt(res.value("prp_iterations_max"), 0)});
  }
  std::printf(
      "%s\n",
      cmp.render("Rollback distance: PRP scheme vs asynchronous RBs "
                 "(paired failures)")
          .c_str());

  // --- storage accounting from the simulator ---
  const ResultSet& storage = mc_results.back();
  std::printf("Storage (n = 3, mu = 1): snapshots/time = %.3f "
              "(model n*sum(mu) = %.1f reduced by failed ATs), RP rate = "
              "%.3f, recording fraction = %.5f, clean restarts verified: "
              "%zu contaminated of %zu failures\n",
              storage.value("snapshots_per_unit_time"), 9.0,
              storage.value("rp_per_unit_time"),
              storage.value("recording_time_fraction"),
              static_cast<std::size_t>(
                  storage.value("contaminated_restarts")),
              static_cast<std::size_t>(storage.value("failures")));
  std::printf(
      "\nShape check: PRP mean distance tracks E[sup y] and stays bounded\n"
      "while the asynchronous distance grows with interaction density and\n"
      "regularly dominoes - the paper's Section 4 trade-off.\n");
  return 0;
}
