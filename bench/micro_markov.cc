// MICRO - microbenchmarks of the Markov engine: chain construction, dense
// hitting-time solves, uniformization vs RK4 transient solutions, and the
// phase-type density evaluation that drives Figure 6.
//
// Each process count n is one sweep cell evaluated through the registered
// "micro-markov" backend (perf/micro_backend.h), so the timing cells run
// on any executor - including --connect/--fleet worker daemons, which is
// how a fleet's per-host kernel speeds can be compared.  The numbers come
// back as ResultSet metrics (value = ns/op, count = repetitions timed).
// The usual flags apply - --nmax picks the largest n, --samples scales
// the repetition budget, --threads times cells concurrently (wall-clock
// numbers per cell are still serial within the cell).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_main.h"

namespace {

using namespace rbx;

std::string fmt_cell(const ResultSet& res, const char* metric) {
  if (!res.has(metric)) {
    return "-";
  }
  return TextTable::fmt(res.value(metric) / 1000.0, 1);  // ns -> us
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rbx;
  bench::SweepOutcome sweep = bench::run_sweep(
      argc, argv,
      {"MICRO-MARKOV",
       "Microbenchmarks: Markov chain build/solve kernels (us/op)",
       /*samples=*/4096, /*nmax=*/7},
      [](const ExperimentOptions& opts) {
        const std::size_t nmax = std::min<std::size_t>(opts.nmax, 9);
        std::vector<Scenario> cells;
        for (std::size_t n = 2; n <= nmax; ++n) {
          cells.push_back(Scenario::symmetric(n, 1.0, 1.0)
                              .seed(opts.seed + n)
                              .samples(opts.samples));
        }
        return cells;
      },
      EvalPlan{{EvalStep{"micro-markov", ""}}},
      /*default_threads=*/1);
  if (!sweep.results) {
    return 0;  // --shard: partial written
  }

  TextTable table({"n", "build full", "build lumped", "transient unif",
                   "transient rk4", "phase pdf", "exp visits", "mc lines"});
  for (std::size_t k = 0; k < sweep.cells.size(); ++k) {
    const ResultSet& res = (*sweep.results)[k];
    table.add_row(
        {TextTable::fmt_int(static_cast<long long>(sweep.cells[k].n())),
         fmt_cell(res, "build_full_ns"), fmt_cell(res, "build_lumped_ns"),
         fmt_cell(res, "transient_uniformization_ns"),
         fmt_cell(res, "transient_rk4_ns"), fmt_cell(res, "phase_pdf_ns"),
         fmt_cell(res, "expected_visits_ns"), fmt_cell(res, "mc_lines_ns")});
  }
  std::printf("%s\n", table.render("Markov engine kernels (us/op)").c_str());
  return 0;
}
