// MICRO - google-benchmark microbenchmarks of the Markov engine: chain
// construction, dense hitting-time solves, uniformization vs RK4 transient
// solutions, and the phase-type density evaluation that drives Figure 6.
#include <benchmark/benchmark.h>

#include "core/api.h"

namespace {

using namespace rbx;

void BM_AsyncModelBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto params = ProcessSetParams::symmetric(n, 1.0, 0.5);
  for (auto _ : state) {
    AsyncRbModel model(params);
    benchmark::DoNotOptimize(model.mean_interval());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(1) << n);
}
BENCHMARK(BM_AsyncModelBuild)->DenseRange(3, 9)->Complexity();

void BM_SymmetricModelBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // Hold rho at 0.05 so E[X] stays well-conditioned at every size.
  const double lambda = 2.0 * 0.05 / (static_cast<double>(n) - 1.0);
  for (auto _ : state) {
    SymmetricAsyncModel model(n, 1.0, lambda);
    benchmark::DoNotOptimize(model.mean_interval());
  }
}
BENCHMARK(BM_SymmetricModelBuild)->RangeMultiplier(2)->Range(4, 64);

void BM_TransientUniformization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  AsyncRbModel model(ProcessSetParams::symmetric(n, 1.0, 1.0));
  std::vector<double> pi0(model.num_states(), 0.0);
  pi0[0] = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.chain().transient(pi0, 1.0));
  }
}
BENCHMARK(BM_TransientUniformization)->DenseRange(3, 8);

void BM_TransientRk4(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  AsyncRbModel model(ProcessSetParams::symmetric(n, 1.0, 1.0));
  std::vector<double> pi0(model.num_states(), 0.0);
  pi0[0] = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.chain().transient_rk4(pi0, 1.0, 500));
  }
}
BENCHMARK(BM_TransientRk4)->DenseRange(3, 8);

void BM_PhaseTypePdf(benchmark::State& state) {
  AsyncRbModel model(ProcessSetParams::symmetric(
      static_cast<std::size_t>(state.range(0)), 1.0, 1.0));
  double t = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.interval_pdf(t));
    t = t < 2.0 ? t + 0.1 : 0.1;
  }
}
BENCHMARK(BM_PhaseTypePdf)->DenseRange(3, 7);

void BM_ExpectedVisits(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  AsyncRbModel model(ProcessSetParams::symmetric(n, 1.0, 1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.expected_rp_count_split_chain(0));
  }
}
BENCHMARK(BM_ExpectedVisits)->DenseRange(3, 7);

void BM_MonteCarloLines(benchmark::State& state) {
  const auto params = ProcessSetParams::symmetric(3, 1.0, 1.0);
  AsyncRbSimulator sim(params, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run_lines(100).interval.mean());
  }
}
BENCHMARK(BM_MonteCarloLines);

}  // namespace

BENCHMARK_MAIN();
