// MICRO - microbenchmarks of the Markov engine: chain construction, dense
// hitting-time solves, uniformization vs RK4 transient solutions, and the
// phase-type density evaluation that drives Figure 6.
//
// Ported off google-benchmark onto the repo's own Scenario/EvalBackend
// sweep harness: each process count n is one sweep cell, the kernels are
// timed inside a custom EvalBackend, and the numbers come back as ResultSet
// metrics (value = ns/op, count = repetitions timed).  The usual flags
// apply - --nmax picks the largest n, --samples scales the repetition
// budget, --threads times cells concurrently (wall-clock numbers per cell
// are still serial within the cell).
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "core/api.h"

namespace {

using namespace rbx;

// ns/op of fn over a repetition budget (one untimed warm-up call).  The
// sink defeats dead-code elimination the way benchmark::DoNotOptimize did.
volatile double g_sink = 0.0;

double time_ns(std::size_t reps, const std::function<double()>& fn) {
  g_sink = g_sink + fn();
  const auto t0 = std::chrono::steady_clock::now();
  double acc = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    acc += fn();
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  g_sink = g_sink + acc;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         static_cast<double>(reps);
}

// The Markov kernels as an EvalBackend: scenario.n() picks the chain size,
// scenario.samples() the repetition budget, and every kernel valid at that
// size reports one "<kernel>_ns" metric.
class MarkovMicroBackend final : public EvalBackend {
 public:
  std::string name() const override { return "micro-markov"; }

  bool supports(const Scenario& scenario) const override {
    // The full model holds 2^n + 1 states; past 9 the dense solves stop
    // being "micro".
    return scenario.n() >= 2 && scenario.n() <= 9;
  }

  ResultSet evaluate(const Scenario& scenario) const override {
    const std::size_t n = scenario.n();
    ResultSet out(name(), scenario.label());
    const auto set_ns = [&out](const char* metric, std::size_t reps,
                               const std::function<double()>& fn) {
      out.set(metric, time_ns(reps, fn), 0.0, reps);
    };
    // Budgets shrink with the state count so every n finishes promptly.
    const std::size_t budget = scenario.samples();
    const std::size_t heavy =
        std::max<std::size_t>(1, budget >> std::min<std::size_t>(n, 12));

    set_ns("build_full_ns", heavy, [n] {
      AsyncRbModel model(ProcessSetParams::symmetric(n, 1.0, 0.5));
      return model.mean_interval();
    });
    {
      // Hold rho at 0.05 so E[X] stays well-conditioned at every size.
      const double lambda = 2.0 * 0.05 / (static_cast<double>(n) - 1.0);
      set_ns("build_lumped_ns", std::max<std::size_t>(1, budget / 4),
             [n, lambda] {
               SymmetricAsyncModel model(n, 1.0, lambda);
               return model.mean_interval();
             });
    }
    if (n <= 8) {
      AsyncRbModel model(ProcessSetParams::symmetric(n, 1.0, 1.0));
      std::vector<double> pi0(model.num_states(), 0.0);
      pi0[0] = 1.0;
      set_ns("transient_uniformization_ns", heavy,
             [&model, &pi0] { return model.chain().transient(pi0, 1.0)[0]; });
      set_ns("transient_rk4_ns", heavy, [&model, &pi0] {
        return model.chain().transient_rk4(pi0, 1.0, 500)[0];
      });
    }
    if (n <= 7) {
      AsyncRbModel model(ProcessSetParams::symmetric(n, 1.0, 1.0));
      double t = 0.1;
      set_ns("phase_pdf_ns", heavy, [&model, &t] {
        const double v = model.interval_pdf(t);
        t = t < 2.0 ? t + 0.1 : 0.1;
        return v;
      });
      set_ns("expected_visits_ns", heavy, [&model] {
        return model.expected_rp_count_split_chain(0);
      });
    }
    {
      AsyncRbSimulator sim(ProcessSetParams::symmetric(n, 1.0, 1.0),
                           scenario.seed());
      set_ns("mc_lines_ns", std::max<std::size_t>(1, budget / 256),
             [&sim] { return sim.run_lines(100).interval.mean(); });
    }
    return out;
  }
};

std::string fmt_cell(const ResultSet& res, const char* metric) {
  if (!res.has(metric)) {
    return "-";
  }
  return TextTable::fmt(res.value(metric) / 1000.0, 1);  // ns -> us
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rbx;
  const ExperimentOptions opts =
      ExperimentOptions::parse(argc, argv, /*samples=*/4096, /*nmax=*/7);
  print_banner("MICRO-MARKOV",
               "Microbenchmarks: Markov chain build/solve kernels (us/op)");

  const std::size_t nmax = std::min<std::size_t>(opts.nmax, 9);
  std::vector<Scenario> cells;
  for (std::size_t n = 2; n <= nmax; ++n) {
    cells.push_back(Scenario::symmetric(n, 1.0, 1.0)
                        .seed(opts.seed + n)
                        .samples(opts.samples));
  }

  const MarkovMicroBackend backend;
  SweepRunner runner(opts, /*default_threads=*/1);
  const auto sweep = runner.run(cells, backend);
  if (!sweep) {
    return 0;  // --shard: partial written
  }

  TextTable table({"n", "build full", "build lumped", "transient unif",
                   "transient rk4", "phase pdf", "exp visits", "mc lines"});
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const ResultSet& res = (*sweep)[k];
    table.add_row(
        {TextTable::fmt_int(static_cast<long long>(cells[k].n())),
         fmt_cell(res, "build_full_ns"), fmt_cell(res, "build_lumped_ns"),
         fmt_cell(res, "transient_uniformization_ns"),
         fmt_cell(res, "transient_rk4_ns"), fmt_cell(res, "phase_pdf_ns"),
         fmt_cell(res, "expected_visits_ns"), fmt_cell(res, "mc_lines_ns")});
  }
  std::printf("%s\n", table.render("Markov engine kernels (us/op)").c_str());
  return 0;
}
