// ABL-SYNC - ablation of Section 3's three synchronization-request
// strategies:
//   (1) constant wall-clock interval (blind timer);
//   (2) elapsed time since the previous recovery line;
//   (3) number of states saved since the previous line.
//
// The paper argues strategy 1 is the simplest but "may become very
// inefficient since it is possible to make synchronization requests
// immediately after the formation of recovery lines", while 2 and 3 bound
// the rollback distance and the saved-state volume respectively.  The
// bench matches the three strategies on mean line spacing, then compares
// loss rate, rollback distance (errors injected at a fixed rate) and
// states saved per line.
#include <cstdio>

#include "core/api.h"

int main(int argc, char** argv) {
  using namespace rbx;
  const ExperimentOptions opts =
      ExperimentOptions::parse(argc, argv, /*samples=*/30000, /*nmax=*/0);
  print_banner("ABL-SYNC", "Section 3 synchronization strategies compared");

  const std::vector<double> mu = {1.5, 1.0, 0.5};
  SyncRbModel model(mu);
  const double ez = model.mean_max_wait();
  // Target mean spacing between lines.
  const double target = 4.0;

  struct Variant {
    const char* label;
    SyncSimParams params;
  };
  std::vector<Variant> variants;
  {
    SyncSimParams p;
    p.mu = mu;
    p.error_rate = 0.5;
    p.strategy = SyncStrategy::kConstantInterval;
    p.interval = target;  // grid period == target spacing
    variants.push_back({"1: constant interval", p});
    p.strategy = SyncStrategy::kElapsedTime;
    p.elapsed_threshold = target - ez;  // spacing = threshold + E[Z]
    variants.push_back({"2: elapsed time", p});
    p.strategy = SyncStrategy::kSavedStates;
    // Spacing = threshold/total_mu + E[Z]; total_mu = 3.
    p.saved_threshold =
        static_cast<std::size_t>((target - ez) * 3.0 + 0.5);
    variants.push_back({"3: saved states", p});
  }

  TextTable table({"strategy", "line spacing", "loss rate", "loss/sync",
                   "rollback dist", "rollback p95", "states/line",
                   "states/line sd"});
  for (const Variant& v : variants) {
    SyncRbSimulator sim(v.params, opts.seed);
    const SyncSimResult r = sim.run(opts.samples);
    table.add_row({v.label,
                   fmt_ci(r.line_spacing.mean(),
                          r.line_spacing.ci_half_width(), 3),
                   TextTable::fmt(r.loss_rate, 4),
                   TextTable::fmt(r.loss.mean(), 4),
                   fmt_ci(r.rollback_distance.mean(),
                          r.rollback_distance.ci_half_width(), 3),
                   TextTable::fmt(r.rollback_distance.quantile(0.95), 3),
                   TextTable::fmt(r.states_per_line.mean(), 2),
                   TextTable::fmt(r.states_per_line.stddev(), 2)});
  }
  std::printf("%s\n",
              table
                  .render("Strategies matched to ~equal mean line spacing "
                          "(mu = {1.5, 1.0, 0.5}, target 4.0)")
                  .c_str());
  std::printf(
      "Reading: per-sync loss is strategy-independent (the commit cost\n"
      "depends only on mu), so at matched spacing the loss rates agree;\n"
      "strategy 2 tightens the rollback-distance tail (it caps line age),\n"
      "strategy 3 tightens the saved-state count (zero variance), and the\n"
      "blind timer controls neither - the paper's trade-off.\n");
  return 0;
}
