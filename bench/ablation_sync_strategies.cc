// ABL-SYNC - ablation of Section 3's three synchronization-request
// strategies:
//   (1) constant wall-clock interval (blind timer);
//   (2) elapsed time since the previous recovery line;
//   (3) number of states saved since the previous line.
//
// The paper argues strategy 1 is the simplest but "may become very
// inefficient since it is possible to make synchronization requests
// immediately after the formation of recovery lines", while 2 and 3 bound
// the rollback distance and the saved-state volume respectively.  The
// bench matches the three strategies on mean line spacing, then compares
// loss rate, rollback distance (errors injected at a fixed rate) and
// states saved per line.
//
// Each strategy is one sweep cell: a synchronized-scheme Scenario whose
// SyncPolicy selects the strategy, evaluated through the registered
// "monte-carlo" backend, so the comparison runs under every execution
// mode with byte-identical output.
#include <cstdio>

#include "bench_main.h"

int main(int argc, char** argv) {
  using namespace rbx;

  static const char* labels[] = {"1: constant interval", "2: elapsed time",
                                 "3: saved states"};
  bench::SweepOutcome sweep = bench::run_sweep(
      argc, argv,
      {"ABL-SYNC", "Section 3 synchronization strategies compared",
       /*samples=*/30000, /*nmax=*/0},
      [](const ExperimentOptions& opts) {
        const std::vector<double> mu = {1.5, 1.0, 0.5};
        // E[Z], the commit wait every strategy pays per line; exact
        // inclusion-exclusion (model/sync_model.h).
        const double ez = expected_max_exponential(mu);
        // Target mean spacing between lines.
        const double target = 4.0;

        const Scenario base = Scenario::from_mu(mu)
                                  .scheme(SchemeKind::kSynchronized)
                                  .error_rate(0.5)
                                  .seed(opts.seed)
                                  .samples(opts.samples);
        SyncPolicy p;
        std::vector<Scenario> cells;
        p.strategy = SyncStrategy::kConstantInterval;
        p.interval = target;  // grid period == target spacing
        cells.push_back(Scenario(base).sync_policy(p));
        p.strategy = SyncStrategy::kElapsedTime;
        p.elapsed_threshold = target - ez;  // spacing = threshold + E[Z]
        cells.push_back(Scenario(base).sync_policy(p));
        p.strategy = SyncStrategy::kSavedStates;
        // Spacing = threshold/total_mu + E[Z]; total_mu = 3.
        p.saved_threshold =
            static_cast<std::size_t>((target - ez) * 3.0 + 0.5);
        cells.push_back(Scenario(base).sync_policy(p));
        return cells;
      },
      EvalPlan{{EvalStep{"monte-carlo", ""}}});
  if (!sweep.results) {
    return 0;  // --shard: partial written
  }
  const std::vector<ResultSet>& results = *sweep.results;

  TextTable table({"strategy", "line spacing", "loss rate", "loss/sync",
                   "rollback dist", "rollback p95", "states/line",
                   "states/line sd"});
  for (std::size_t k = 0; k < results.size(); ++k) {
    const ResultSet& res = results[k];
    const Metric& spacing = res.metric("sync_line_spacing");
    const Metric& rollback = res.metric("sync_rollback_distance");
    table.add_row({labels[k], fmt_ci(spacing.value, spacing.half_width, 3),
                   TextTable::fmt(res.value("sync_loss_rate"), 4),
                   TextTable::fmt(res.value("sync_mean_loss"), 4),
                   fmt_ci(rollback.value, rollback.half_width, 3),
                   TextTable::fmt(res.value("sync_rollback_distance_p95"),
                                  3),
                   TextTable::fmt(res.value("sync_states_per_line"), 2),
                   TextTable::fmt(res.value("sync_states_per_line_sd"),
                                  2)});
  }
  std::printf("%s\n",
              table
                  .render("Strategies matched to ~equal mean line spacing "
                          "(mu = {1.5, 1.0, 0.5}, target 4.0)")
                  .c_str());
  std::printf(
      "Reading: per-sync loss is strategy-independent (the commit cost\n"
      "depends only on mu), so at matched spacing the loss rates agree;\n"
      "strategy 2 tightens the rollback-distance tail (it caps line age),\n"
      "strategy 3 tightens the saved-state count (zero variance), and the\n"
      "blind timer controls neither - the paper's trade-off.\n");
  return 0;
}
