// SEC3-CL - reproduces Section 3's analysis of synchronized recovery
// blocks: the mean loss in computation power per synchronization,
//
//   CL = n * Int_0^inf (1 - G(t)) dt - sum_i 1/mu_i,
//   G(t) = prod_i (1 - e^{-mu_i t}).
//
// The paper gives the formula without a numbered table; this bench prints
// the curve for homogeneous systems (CL = n (H_n - 1) / mu), heterogeneous
// rate sets, and a Monte-Carlo validation through the commit simulator.
//
// Rows are sweep cells (analytic + Monte-Carlo backends per cell); the
// per-row seeds match the original loop so --threads/--workers/--shard
// only change the wall-clock, not the printed values.  Two grids, one
// bench::Bench: its SweepRunner persists across both sweeps so --shard
// writes one partial section per grid.
#include <cstddef>
#include <cstdio>
#include <vector>

#include "bench_main.h"

int main(int argc, char** argv) {
  using namespace rbx;
  bench::Bench bench(
      argc, argv,
      {"SEC3-CL", "Section 3: computation-power loss of synchronized RBs",
       /*samples=*/30000, /*nmax=*/10});
  const ExperimentOptions& opts = bench.opts();

  std::vector<Scenario> cells;
  for (std::size_t n = 1; n <= opts.nmax; ++n) {
    cells.push_back(Scenario::from_mu(std::vector<double>(n, 1.0))
                        .scheme(SchemeKind::kSynchronized)
                        .seed(opts.seed + n)
                        .samples(opts.samples));
  }

  const auto homo_sweep =
      bench.run(cells, [](const Scenario& s, std::size_t) {
        // n = 1 never synchronizes, so there is nothing to simulate.
        EvalPlan plan{{EvalStep{"analytic", ""}}};
        if (s.n() >= 2) {
          plan.steps.push_back(EvalStep{"monte-carlo", "mc_"});
        }
        return plan;
      });

  // Heterogeneous sets: the slowest process dominates everyone's wait.
  struct HeteroCase {
    const char* label;
    std::vector<double> mu;
  };
  const HeteroCase hetero[] = {
      {"table-1 rates", {1.5, 1.0, 0.5}},
      {"fig-6 rates", {0.6, 0.45, 0.45}},
      {"one straggler", {2.0, 2.0, 2.0, 0.2}},
      {"two classes", {1.0, 1.0, 0.25, 0.25}},
  };
  std::vector<Scenario> het_cells;
  for (const HeteroCase& c : hetero) {
    het_cells.push_back(
        Scenario::from_mu(c.mu).scheme(SchemeKind::kSynchronized));
  }
  const auto het_sweep = bench.run(het_cells, analytic_backend());
  if (!homo_sweep) {
    return 0;  // --shard: partials for both sweeps written
  }
  const std::vector<ResultSet>& results = *homo_sweep;
  const std::vector<ResultSet>& het_results = *het_sweep;

  TextTable homo({"n", "E[Z] = H_n/mu", "CL closed form", "CL quadrature",
                  "CL monte-carlo", "mc-dev"});
  for (std::size_t k = 0; k < results.size(); ++k) {
    const std::size_t n = k + 1;
    const ResultSet& res = results[k];
    const double cl = res.value("sync_mean_loss");
    const double cl_quad =
        static_cast<double>(n) * res.value("sync_mean_max_wait_quadrature") -
        static_cast<double>(n);

    std::string mc = "-";
    std::string dev = "-";
    if (n >= 2) {
      const Metric& loss = res.metric("mc_sync_mean_loss");
      mc = fmt_ci(loss.value, loss.half_width);
      dev = fmt_dev(loss.value, cl);
    }
    homo.add_row({TextTable::fmt_int(static_cast<long long>(n)),
                  TextTable::fmt(res.value("sync_mean_max_wait"), 4),
                  TextTable::fmt(cl, 4), TextTable::fmt(cl_quad, 4), mc,
                  dev});
  }
  std::printf("%s\n",
              homo.render("Homogeneous processes (mu = 1.0)").c_str());

  TextTable het({"rates", "E[Z]", "CL", "wait of fastest",
                 "wait of slowest"});
  for (std::size_t k = 0; k < het_cells.size(); ++k) {
    const HeteroCase& c = hetero[k];
    const ResultSet& res = het_results[k];
    std::size_t fastest = 0, slowest = 0;
    for (std::size_t i = 0; i < c.mu.size(); ++i) {
      if (c.mu[i] > c.mu[fastest]) {
        fastest = i;
      }
      if (c.mu[i] < c.mu[slowest]) {
        slowest = i;
      }
    }
    het.add_row(
        {c.label, TextTable::fmt(res.value("sync_mean_max_wait"), 4),
         TextTable::fmt(res.value("sync_mean_loss"), 4),
         TextTable::fmt(
             res.value("sync_mean_wait_" + std::to_string(fastest + 1)), 4),
         TextTable::fmt(
             res.value("sync_mean_wait_" + std::to_string(slowest + 1)),
             4)});
  }
  std::printf("%s\n", het.render("Heterogeneous rate sets").c_str());
  std::printf(
      "Shape check: loss grows superlinearly in n (n(H_n - 1)) and is\n"
      "dominated by the slowest process - the paper's motivation for not\n"
      "synchronizing time-critical tasks too frequently.\n");
  return 0;
}
