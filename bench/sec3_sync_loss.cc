// SEC3-CL - reproduces Section 3's analysis of synchronized recovery
// blocks: the mean loss in computation power per synchronization,
//
//   CL = n * Int_0^inf (1 - G(t)) dt - sum_i 1/mu_i,
//   G(t) = prod_i (1 - e^{-mu_i t}).
//
// The paper gives the formula without a numbered table; this bench prints
// the curve for homogeneous systems (CL = n (H_n - 1) / mu), heterogeneous
// rate sets, and a Monte-Carlo validation through the commit simulator.
#include <cmath>
#include <cstdio>

#include "core/api.h"

int main(int argc, char** argv) {
  using namespace rbx;
  const ExperimentOptions opts =
      ExperimentOptions::parse(argc, argv, /*samples=*/30000, /*nmax=*/10);
  print_banner("SEC3-CL",
               "Section 3: computation-power loss of synchronized RBs");

  TextTable homo({"n", "E[Z] = H_n/mu", "CL closed form", "CL quadrature",
                  "CL monte-carlo", "mc-dev"});
  for (std::size_t n = 1; n <= opts.nmax; ++n) {
    std::vector<double> mu(n, 1.0);
    SyncRbModel model(mu);
    const double cl = model.mean_loss();
    const double cl_quad =
        static_cast<double>(n) * model.mean_max_wait_quadrature() -
        static_cast<double>(n);

    std::string mc = "-";
    std::string dev = "-";
    if (n >= 2) {
      SyncSimParams sp;
      sp.mu = mu;
      sp.strategy = SyncStrategy::kElapsedTime;
      sp.elapsed_threshold = 1.0;
      SyncRbSimulator sim(sp, opts.seed + n);
      const SyncSimResult r = sim.run(opts.samples);
      mc = fmt_ci(r.loss.mean(), r.loss.ci_half_width());
      dev = fmt_dev(r.loss.mean(), cl);
    }
    homo.add_row({TextTable::fmt_int(static_cast<long long>(n)),
                  TextTable::fmt(model.mean_max_wait(), 4),
                  TextTable::fmt(cl, 4), TextTable::fmt(cl_quad, 4), mc,
                  dev});
  }
  std::printf("%s\n",
              homo.render("Homogeneous processes (mu = 1.0)").c_str());

  // Heterogeneous sets: the slowest process dominates everyone's wait.
  struct HeteroCase {
    const char* label;
    std::vector<double> mu;
  };
  const HeteroCase hetero[] = {
      {"table-1 rates", {1.5, 1.0, 0.5}},
      {"fig-6 rates", {0.6, 0.45, 0.45}},
      {"one straggler", {2.0, 2.0, 2.0, 0.2}},
      {"two classes", {1.0, 1.0, 0.25, 0.25}},
  };
  TextTable het({"rates", "E[Z]", "CL", "wait of fastest",
                 "wait of slowest"});
  for (const HeteroCase& c : hetero) {
    SyncRbModel model(c.mu);
    std::size_t fastest = 0, slowest = 0;
    for (std::size_t i = 0; i < c.mu.size(); ++i) {
      if (c.mu[i] > c.mu[fastest]) {
        fastest = i;
      }
      if (c.mu[i] < c.mu[slowest]) {
        slowest = i;
      }
    }
    het.add_row({c.label, TextTable::fmt(model.mean_max_wait(), 4),
                 TextTable::fmt(model.mean_loss(), 4),
                 TextTable::fmt(model.mean_wait(fastest), 4),
                 TextTable::fmt(model.mean_wait(slowest), 4)});
  }
  std::printf("%s\n", het.render("Heterogeneous rate sets").c_str());
  std::printf(
      "Shape check: loss grows superlinearly in n (n(H_n - 1)) and is\n"
      "dominated by the slowest process - the paper's motivation for not\n"
      "synchronizing time-critical tasks too frequently.\n");
  return 0;
}
