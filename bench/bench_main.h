// Shared scaffolding for the paper benches.
//
// Every bench that rides the distribution stack has the same opening
// movement: parse the strict flags, print the banner, expand a grid of
// seeded Scenario cells, hand them to SweepRunner with a serializable
// EvalPlan, and - when this process is a --shard worker that just wrote
// its partial - exit 0 without rendering.  This header is that movement
// in two sizes:
//
//  * run_sweep() - the one-grid case (most benches):
//
//      int main(int argc, char** argv) {
//        bench::SweepOutcome sweep = bench::run_sweep(
//            argc, argv, {"FIG6", "Figure 6: ...", /*samples=*/200000,
//                         /*nmax=*/0},
//            build_cells, plan_fn_or_plan);
//        if (!sweep.results) return 0;   // --shard: partial written
//        render(sweep);
//      }
//
//  * bench::Bench - the multi-sweep case (sec3/sec4-style benches whose
//    output assembles several tables from separate grids).  One Bench
//    holds one SweepRunner across every run() call, so the composed lanes
//    (and a --connect lane's worker sessions) persist across sweeps and
//    section s of every --shard partial lines up with the bench's s-th
//    grid:
//
//      bench::Bench bench(argc, argv, {"SEC3-CL", "...", 30000, 10});
//      const auto a = bench.run(cells_a, plan_a);
//      const auto b = bench.run(cells_b, analytic_backend());
//      if (!a) return 0;                 // --shard: partials written
//      ... print tables from *a and *b ...
//
// lambda_for_rho() is the shared n/rho grid arithmetic of the fig5 and
// ABL-LINE sweeps.  Keeping this header in bench/ (not src/) is
// deliberate: it is presentation scaffolding over the library's public
// surface, not library code.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "core/api.h"

namespace rbx {
namespace bench {

// The per-bench constants run_sweep needs before the grid exists.
struct BenchSpec {
  const char* tag;    // banner tag, e.g. "FIG6"
  const char* title;  // banner title line
  std::size_t default_samples;  // --samples default
  std::size_t default_nmax;     // --nmax default (0 = flag refused)
};

// The interaction rate that holds rho = C(n,2) lambda / (n mu) at a given
// level for n homogeneous processes: lambda = 2 rho mu / (n - 1).
inline double lambda_for_rho(std::size_t n, double rho, double mu = 1.0) {
  return 2.0 * rho * mu / (static_cast<double>(n) - 1.0);
}

using BuildCellsFn =
    std::function<std::vector<Scenario>(const ExperimentOptions&)>;

// Parse + banner + a SweepRunner that persists across sweeps.  Benches
// with one grid use the run_sweep() wrappers below; benches that assemble
// tables from several grids call run() once per grid in a fixed order.
class Bench {
 public:
  Bench(int argc, char** argv, const BenchSpec& spec,
        std::size_t default_threads = 0)
      : opts_(ExperimentOptions::parse(argc, argv, spec.default_samples,
                                       spec.default_nmax)),
        runner_(opts_, default_threads) {
    print_banner(spec.tag, spec.title);
  }

  const ExperimentOptions& opts() const { return opts_; }

  // One sweep: nullopt when this process is a --shard worker (the bench
  // skips its printing; every remaining run() call must still happen so
  // all partial sections get written).
  std::optional<std::vector<ResultSet>> run(
      const std::vector<Scenario>& cells, const PlanFn& plan_fn) {
    return runner_.run(cells, plan_fn);
  }
  std::optional<std::vector<ResultSet>> run(
      const std::vector<Scenario>& cells, const EvalPlan& plan) {
    return runner_.run(cells,
                       [&plan](const Scenario&, std::size_t) { return plan; });
  }
  std::optional<std::vector<ResultSet>> run(
      const std::vector<Scenario>& cells, const EvalBackend& backend) {
    return runner_.run(cells, backend);
  }

 private:
  ExperimentOptions opts_;
  SweepRunner runner_;
};

// What a one-grid bench gets back: the parsed options, the expanded grid
// and - unless this process was a shard that wrote its partial and should
// exit 0 - one ResultSet per cell, index-aligned with the grid.
struct SweepOutcome {
  ExperimentOptions opts;
  std::vector<Scenario> cells;
  std::optional<std::vector<ResultSet>> results;
};

// Parse + banner + expand + run.  The plan function makes the cells
// cluster-capable (--workers/--connect/--fleet evaluate the same
// registered backends remotely); default_threads is forwarded to
// SweepRunner for benches whose cells spawn their own threads.
inline SweepOutcome run_sweep(int argc, char** argv, const BenchSpec& spec,
                              const BuildCellsFn& build_cells,
                              const PlanFn& plan_fn,
                              std::size_t default_threads = 0) {
  Bench bench(argc, argv, spec, default_threads);
  SweepOutcome out{bench.opts(), build_cells(bench.opts()), std::nullopt};
  out.results = bench.run(out.cells, plan_fn);
  return out;
}

// The common one-plan-for-every-cell case.
inline SweepOutcome run_sweep(int argc, char** argv, const BenchSpec& spec,
                              const BuildCellsFn& build_cells,
                              const EvalPlan& plan,
                              std::size_t default_threads = 0) {
  return run_sweep(
      argc, argv, spec, build_cells,
      [&plan](const Scenario&, std::size_t) { return plan; },
      default_threads);
}

}  // namespace bench
}  // namespace rbx
