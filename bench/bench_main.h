// Shared scaffolding for the paper benches.
//
// Every bench that rides the distribution stack has the same opening
// movement: parse the strict flags, print the banner, expand a grid of
// seeded Scenario cells, hand them to SweepRunner with a serializable
// EvalPlan, and - when this process is a --shard worker that just wrote
// its partial - exit 0 without rendering.  This header is that movement
// as one function, so a bench file is reduced to what is actually unique
// about it: the grid, the plan and the tables.
//
//   int main(int argc, char** argv) {
//     bench::SweepOutcome sweep = bench::run_sweep(
//         argc, argv, {"FIG6", "Figure 6: ...", /*samples=*/200000,
//                      /*nmax=*/0},
//         build_cells, plan_for_cell);
//     if (!sweep.results) return 0;   // --shard: partial written
//     render(sweep);
//   }
//
// Keeping this in bench/ (not src/) is deliberate: it is presentation
// scaffolding over the library's public surface, not library code.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "core/api.h"

namespace rbx {
namespace bench {

// The per-bench constants run_sweep needs before the grid exists.
struct BenchSpec {
  const char* tag;    // banner tag, e.g. "FIG6"
  const char* title;  // banner title line
  std::size_t default_samples;  // --samples default
  std::size_t default_nmax;     // --nmax default (0 = flag refused)
};

// What a bench gets back: the parsed options, the expanded grid and -
// unless this process was a shard that wrote its partial and should exit
// 0 - one ResultSet per cell, index-aligned with the grid.
struct SweepOutcome {
  ExperimentOptions opts;
  std::vector<Scenario> cells;
  std::optional<std::vector<ResultSet>> results;
};

using BuildCellsFn =
    std::function<std::vector<Scenario>(const ExperimentOptions&)>;

// Parse + banner + expand + run.  The plan function makes the cells
// cluster-capable (--workers/--connect/--fleet evaluate the same
// registered backends remotely); default_threads is forwarded to
// SweepRunner for benches whose cells spawn their own threads.
inline SweepOutcome run_sweep(int argc, char** argv, const BenchSpec& spec,
                              const BuildCellsFn& build_cells,
                              const PlanFn& plan_fn,
                              std::size_t default_threads = 0) {
  SweepOutcome out{ExperimentOptions::parse(argc, argv, spec.default_samples,
                                            spec.default_nmax),
                   {}, std::nullopt};
  print_banner(spec.tag, spec.title);
  out.cells = build_cells(out.opts);
  SweepRunner runner(out.opts, default_threads);
  out.results = runner.run(out.cells, plan_fn);
  return out;
}

// The common one-plan-for-every-cell case.
inline SweepOutcome run_sweep(int argc, char** argv, const BenchSpec& spec,
                              const BuildCellsFn& build_cells,
                              const EvalPlan& plan,
                              std::size_t default_threads = 0) {
  return run_sweep(
      argc, argv, spec, build_cells,
      [&plan](const Scenario&, std::size_t) { return plan; },
      default_threads);
}

}  // namespace bench
}  // namespace rbx
