// MICRO - google-benchmark microbenchmarks of the runtime substrate:
// mailbox throughput, checkpoint save/restore cost as a function of state
// size, recovery-block execution, and the exact recovery-line fixpoint on
// synthetic histories.
#include <benchmark/benchmark.h>

#include "core/api.h"
#include "runtime/channel.h"
#include "runtime/checkpoint.h"
#include "runtime/recovery_block.h"
#include "runtime/serializable.h"
#include "support/rng.h"

namespace {

using namespace rbx;

void BM_MailboxPushPop(benchmark::State& state) {
  Mailbox box;
  Message m;
  m.type = MessageType::kApp;
  m.seq = 1;
  for (auto _ : state) {
    box.push(m);
    benchmark::DoNotOptimize(box.try_pop());
  }
}
BENCHMARK(BM_MailboxPushPop);

void BM_MailboxFilter(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Mailbox box;
    for (std::size_t i = 0; i < count; ++i) {
      Message m;
      m.type = MessageType::kApp;
      m.send_ticket = i;
      box.push(m);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(box.filter(
        [count](const Message& m) { return m.send_ticket > count / 2; }));
  }
}
BENCHMARK(BM_MailboxFilter)->Range(64, 4096);

void BM_WorkStateSerialize(benchmark::State& state) {
  WorkState ws;
  for (int i = 0; i < 100; ++i) {
    ws.step(1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ws.serialize());
  }
}
BENCHMARK(BM_WorkStateSerialize);

void BM_CheckpointSaveAndPurge(benchmark::State& state) {
  WorkState ws;
  std::uint64_t ticket = 0;
  for (auto _ : state) {
    CheckpointStore store(0);
    for (int i = 0; i < 16; ++i) {
      Snapshot s;
      s.kind = i % 4 == 0 ? SnapshotKind::kRecoveryPoint
                          : SnapshotKind::kPseudoRecoveryPoint;
      s.rp_owner = static_cast<ProcessId>(i % 4);
      s.rp_seq = static_cast<std::uint64_t>(i);
      s.ticket = ++ticket;
      s.state = ws.serialize();
      store.save(std::move(s));
    }
    benchmark::DoNotOptimize(store.purge());
  }
}
BENCHMARK(BM_CheckpointSaveAndPurge);

void BM_RecoveryBlockExecute(benchmark::State& state) {
  WorkState ws;
  RecoveryBlock rb([](const Serializable&) { return true; });
  rb.add_alternative(
      [](Serializable& s) { static_cast<WorkState&>(s).step(7); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(rb.execute(ws));
  }
}
BENCHMARK(BM_RecoveryBlockExecute);

void BM_ExactLineFixpoint(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(17);
  History h(n);
  double t = 0.0;
  for (int e = 0; e < 2000; ++e) {
    t += rng.exponential(1.0);
    if (rng.bernoulli(0.5)) {
      h.add_recovery_point(rng.uniform_index(n), t);
    } else {
      const ProcessId a = rng.uniform_index(n);
      ProcessId b = rng.uniform_index(n - 1);
      if (b >= a) {
        ++b;
      }
      h.add_interaction(a, b, t);
    }
  }
  RecoveryLineFinder finder(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(finder.latest_line());
  }
}
BENCHMARK(BM_ExactLineFixpoint)->DenseRange(2, 6);

void BM_RollbackAnalysis(benchmark::State& state) {
  Rng rng(23);
  History h(4);
  double t = 0.0;
  for (int e = 0; e < 2000; ++e) {
    t += rng.exponential(1.0);
    if (rng.bernoulli(0.5)) {
      h.add_recovery_point(rng.uniform_index(4), t);
    } else {
      const ProcessId a = rng.uniform_index(4);
      ProcessId b = rng.uniform_index(3);
      if (b >= a) {
        ++b;
      }
      h.add_interaction(a, b, t);
    }
  }
  RollbackAnalyzer analyzer(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze_failure(0, t + 1.0));
  }
}
BENCHMARK(BM_RollbackAnalysis);

}  // namespace

BENCHMARK_MAIN();
