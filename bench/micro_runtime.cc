// MICRO - microbenchmarks of the runtime substrate: mailbox throughput,
// checkpoint save/restore cost, recovery-block execution, and the exact
// recovery-line fixpoint on synthetic histories.
//
// Ported off google-benchmark onto the repo's own Scenario/EvalBackend
// sweep harness: each process count n is one sweep cell, the kernels are
// timed inside a custom EvalBackend, and the numbers come back as
// ResultSet metrics (value = ns/op, count = repetitions timed).  --nmax
// picks the largest n, --samples scales the repetition budget.
#include <chrono>
#include <cstdio>
#include <functional>
#include <utility>
#include <vector>

#include "core/api.h"
#include "runtime/channel.h"
#include "runtime/checkpoint.h"
#include "runtime/recovery_block.h"
#include "runtime/serializable.h"
#include "support/rng.h"

namespace {

using namespace rbx;

volatile double g_sink = 0.0;

double time_ns(std::size_t reps, const std::function<double()>& fn) {
  g_sink = g_sink + fn();
  const auto t0 = std::chrono::steady_clock::now();
  double acc = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    acc += fn();
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  g_sink = g_sink + acc;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         static_cast<double>(reps);
}

// A synthetic interaction/recovery-point history of n processes, the input
// of the fixpoint and rollback kernels (same construction the old
// google-benchmark bodies used).
History synthetic_history(std::size_t n, std::uint64_t seed, double* t_end) {
  Rng rng(seed);
  History h(n);
  double t = 0.0;
  for (int e = 0; e < 2000; ++e) {
    t += rng.exponential(1.0);
    if (rng.bernoulli(0.5)) {
      h.add_recovery_point(rng.uniform_index(n), t);
    } else {
      const ProcessId a = rng.uniform_index(n);
      ProcessId b = rng.uniform_index(n - 1);
      if (b >= a) {
        ++b;
      }
      h.add_interaction(a, b, t);
    }
  }
  *t_end = t;
  return h;
}

class RuntimeMicroBackend final : public EvalBackend {
 public:
  std::string name() const override { return "micro-runtime"; }

  bool supports(const Scenario& scenario) const override {
    return scenario.n() >= 2;
  }

  ResultSet evaluate(const Scenario& scenario) const override {
    const std::size_t n = scenario.n();
    ResultSet out(name(), scenario.label());
    const auto set_ns = [&out](const char* metric, std::size_t reps,
                               const std::function<double()>& fn) {
      out.set(metric, time_ns(reps, fn), 0.0, reps);
    };
    const std::size_t budget = scenario.samples();

    {
      Mailbox box;
      Message m;
      m.type = MessageType::kApp;
      m.seq = 1;
      set_ns("mailbox_push_pop_ns", budget, [&box, &m] {
        box.push(m);
        return box.try_pop() ? 1.0 : 0.0;
      });
    }
    {
      const std::size_t count = 1024;
      set_ns("mailbox_filter_ns", std::max<std::size_t>(1, budget / 512),
             [count] {
               Mailbox box;
               for (std::size_t i = 0; i < count; ++i) {
                 Message m;
                 m.type = MessageType::kApp;
                 m.send_ticket = i;
                 box.push(m);
               }
               return static_cast<double>(box.filter(
                   [count](const Message& m) {
                     return m.send_ticket > count / 2;
                   }));
             });
    }
    {
      WorkState ws;
      for (int i = 0; i < 100; ++i) {
        ws.step(1);
      }
      set_ns("workstate_serialize_ns", budget,
             [&ws] { return static_cast<double>(ws.serialize().size()); });
      std::uint64_t ticket = 0;
      set_ns("checkpoint_save_purge_ns",
             std::max<std::size_t>(1, budget / 64), [&ws, &ticket] {
               CheckpointStore store(0);
               for (int i = 0; i < 16; ++i) {
                 Snapshot s;
                 s.kind = i % 4 == 0 ? SnapshotKind::kRecoveryPoint
                                     : SnapshotKind::kPseudoRecoveryPoint;
                 s.rp_owner = static_cast<ProcessId>(i % 4);
                 s.rp_seq = static_cast<std::uint64_t>(i);
                 s.ticket = ++ticket;
                 s.state = ws.serialize();
                 store.save(std::move(s));
               }
               return static_cast<double>(store.purge());
             });
      RecoveryBlock rb([](const Serializable&) { return true; });
      rb.add_alternative(
          [](Serializable& s) { static_cast<WorkState&>(s).step(7); });
      set_ns("recovery_block_execute_ns", budget,
             [&rb, &ws] { return rb.execute(ws) ? 1.0 : 0.0; });
    }
    {
      double t_end = 0.0;
      const History h = synthetic_history(n, scenario.seed(), &t_end);
      RecoveryLineFinder finder(h);
      set_ns("exact_line_fixpoint_ns", std::max<std::size_t>(1, budget / 64),
             [&finder] {
               return finder.latest_line().max_time();
             });
      RollbackAnalyzer analyzer(h);
      set_ns("rollback_analysis_ns", std::max<std::size_t>(1, budget / 64),
             [&analyzer, t_end] {
               return analyzer.analyze_failure(0, t_end + 1.0)
                   .rollback_distance;
             });
    }
    return out;
  }
};

std::string fmt_cell(const ResultSet& res, const char* metric) {
  if (!res.has(metric)) {
    return "-";
  }
  return TextTable::fmt(res.value(metric) / 1000.0, 2);  // ns -> us
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rbx;
  const ExperimentOptions opts =
      ExperimentOptions::parse(argc, argv, /*samples=*/8192, /*nmax=*/6);
  print_banner("MICRO-RUNTIME",
               "Microbenchmarks: runtime substrate kernels (us/op)");

  std::vector<Scenario> cells;
  for (std::size_t n = 2; n <= opts.nmax; ++n) {
    cells.push_back(Scenario::symmetric(n, 1.0, 1.0)
                        .seed(opts.seed + n)
                        .samples(opts.samples));
  }

  const RuntimeMicroBackend backend;
  SweepRunner runner(opts, /*default_threads=*/1);
  const auto sweep = runner.run(cells, backend);
  if (!sweep) {
    return 0;  // --shard: partial written
  }

  TextTable table({"n", "mbox push/pop", "mbox filter", "serialize",
                   "ckpt save+purge", "rb execute", "line fixpoint",
                   "rollback"});
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const ResultSet& res = (*sweep)[k];
    table.add_row({TextTable::fmt_int(static_cast<long long>(cells[k].n())),
                   fmt_cell(res, "mailbox_push_pop_ns"),
                   fmt_cell(res, "mailbox_filter_ns"),
                   fmt_cell(res, "workstate_serialize_ns"),
                   fmt_cell(res, "checkpoint_save_purge_ns"),
                   fmt_cell(res, "recovery_block_execute_ns"),
                   fmt_cell(res, "exact_line_fixpoint_ns"),
                   fmt_cell(res, "rollback_analysis_ns")});
  }
  std::printf("%s\n",
              table.render("Runtime substrate kernels (us/op)").c_str());
  return 0;
}
