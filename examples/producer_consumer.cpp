// The domino effect in a producer-consumer pipeline, step by step.
//
// Russell's producer-consumer systems (paper refs [13, 14]) are the classic
// setting for rollback propagation: a three-stage pipeline
//
//     P1 (producer) --> P2 (transformer) --> P3 (consumer)
//
// where each stage checkpoints on its own schedule.  This example scripts
// the exact history of the paper's Figure 1, shows how one acceptance-test
// failure unravels the whole pipeline back to an old recovery line
// (asynchronous RBs), and then replays the same history with pseudo
// recovery points implanted to show the bounded alternative.
#include <cstdio>

#include "core/api.h"

namespace {

void print_restart(const char* scheme, const std::vector<rbx::RestartPoint>& pts,
                   double t_f) {
  std::printf("%s:\n", scheme);
  for (std::size_t p = 0; p < pts.size(); ++p) {
    if (pts[p].is_initial) {
      std::printf("  P%zu -> restart from the BEGINNING (domino)\n", p + 1);
    } else {
      std::printf("  P%zu -> %s at t=%.1f (rolls back %.1f)\n", p + 1,
                  pts[p].is_pseudo ? "PRP" : "RP", pts[p].time,
                  t_f - pts[p].time);
    }
  }
}

}  // namespace

int main() {
  using namespace rbx;

  // ---- Act 1: asynchronous recovery blocks (Figure 1's history) ----
  History h(3);
  h.add_recovery_point(0, 1.0);   // RP1^1
  h.add_recovery_point(1, 1.2);   // RP1^2
  h.add_recovery_point(2, 1.4);   // RP1^3   <- recovery line RL1
  h.add_interaction(0, 1, 2.0);   // producer hands a batch to P2
  h.add_recovery_point(0, 2.5);   // RP2^1
  h.add_interaction(1, 2, 3.0);   // P2 forwards to the consumer
  h.add_recovery_point(1, 3.5);   // RP2^2
  h.add_interaction(0, 1, 4.0);
  h.add_recovery_point(2, 4.5);   // RP2^3
  h.add_interaction(1, 2, 5.0);
  h.add_interaction(0, 1, 5.5);

  const double t_f = 6.0;  // P1 fails its acceptance test here
  std::printf("Pipeline history (RPs and hand-offs), P1 fails at t=%.1f\n\n",
              t_f);

  RollbackAnalyzer analyzer(h);
  const RollbackResult async = analyzer.analyze_failure(0, t_f);
  print_restart("Asynchronous RBs (rollback propagation)", async.line.points,
                t_f);
  std::printf("  -> %zu of 3 processes rolled back; rollback distance %.1f; "
              "domino to start: %s\n\n",
              async.affected_count, async.rollback_distance,
              async.domino_to_start ? "yes" : "no");

  // ---- Act 2: the same pipeline with PRPs implanted ----
  History hp(3);
  auto rp_with_implants = [&hp](ProcessId owner, double t) {
    hp.add_recovery_point(owner, t);
    const std::size_t seq = hp.rp_count(owner);
    for (ProcessId q = 0; q < 3; ++q) {
      if (q != owner) {
        hp.add_pseudo_recovery_point(q, t + 0.05, owner, seq);
      }
    }
  };
  rp_with_implants(0, 1.0);
  rp_with_implants(1, 1.2);
  rp_with_implants(2, 1.4);
  hp.add_interaction(0, 1, 2.0);
  rp_with_implants(0, 2.5);
  hp.add_interaction(1, 2, 3.0);
  rp_with_implants(1, 3.5);
  hp.add_interaction(0, 1, 4.0);
  rp_with_implants(2, 4.5);
  hp.add_interaction(1, 2, 5.0);
  hp.add_interaction(0, 1, 5.5);

  PrpRollbackPlanner planner(hp);
  const PrpRollbackResult local = planner.plan(0, t_f, ErrorScope::kLocal);
  print_restart("Pseudo recovery points (local error in P1)", local.restart,
                t_f);
  std::printf("  -> distance %.2f in %zu pointer iteration(s)\n\n",
              local.rollback_distance, local.iterations);

  const PrpRollbackResult prop =
      planner.plan(2, t_f, ErrorScope::kPropagated);
  print_restart("Pseudo recovery points (propagated error detected at P3)",
                prop.restart, t_f);
  std::printf("  -> distance %.2f in %zu pointer iteration(s)\n\n",
              prop.rollback_distance, prop.iterations);

  // ---- Act 3: the statistics behind the anecdote ----
  // The same comparison phrased as one Scenario cell evaluated through
  // the registered backends - the shape every bench sweep multiplies,
  // and a serializable EvalPlan could ship this exact cell to a
  // sweep_workerd daemon.  The Monte-Carlo backend drives the PRP
  // simulator over the paired failure histories; the analytic backend
  // merges in under "model_" with the E[sup y] bound of Section 4.
  const auto params = ProcessSetParams::three(0.5, 0.5, 0.5, 1.5, 1.5, 0.0);
  const Scenario cell = Scenario(params)
                            .scheme(SchemeKind::kPseudoRecoveryPoints)
                            .t_record(1e-4)
                            .error_rate(0.2)
                            .seed(7)
                            .samples(2000);
  const EvalPlan plan{
      {EvalStep{"monte-carlo", ""}, EvalStep{"analytic", "model_"}}};
  const ResultSet mc = evaluate_plan(plan, cell);
  std::printf("Monte-Carlo over the pipeline rates (%s):\n",
              params.describe().c_str());
  std::printf("  async rollback: mean %.2f, p95 %.2f, dominoes %zu/%zu\n",
              mc.value("async_distance"), mc.value("async_distance_p95"),
              static_cast<std::size_t>(mc.value("async_domino_count")),
              static_cast<std::size_t>(mc.value("failures")));
  std::printf("  PRP rollback  : mean %.2f, p95 %.2f (bound E[sup y] = "
              "%.2f)\n",
              mc.value("prp_distance"), mc.value("prp_distance_p95"),
              mc.value("model_prp_mean_rollback_bound"));

  // Export the history diagram for inspection with GraphViz.
  std::printf("\nDOT of the asynchronous history (paper Figure 1 shape):\n%s",
              history_to_dot(h, "producer_consumer").c_str());
  return 0;
}
