// Quickstart: analyze a set of cooperating processes under the three
// backward-error-recovery schemes of Shin & Lee (ICPP 1983).
//
//   $ ./quickstart
//
// Three processes, recovery points at rates (1.5, 1.0, 0.5), every pair
// interacting at rate 1.0 - Table 1 case 2 of the paper.
#include <cstdio>

#include "core/api.h"

int main() {
  using namespace rbx;

  // 1. Describe the process set (Section 2.1 assumptions: Poisson RPs,
  //    exponential pairwise interaction intervals).
  const auto params = ProcessSetParams::three(/*mu=*/1.5, 1.0, 0.5,
                                              /*lambda12/23/13=*/1.0, 1.0,
                                              1.0);
  std::printf("process set: %s\n\n", params.describe().c_str());

  // 2. Closed-form / chain-based analysis of all three schemes.
  Analyzer analyzer(params, /*t_record=*/0.01);
  const SchemeComparison cmp = analyzer.compare();
  std::printf("%s\n\n", cmp.summary().c_str());

  // 3. Validate the asynchronous-scheme numbers by simulation.
  AsyncRbSimulator sim(params, /*seed=*/2026);
  const AsyncSimResult mc = sim.run_lines(20000);
  std::printf("monte-carlo: E[X] = %s (analytic %.4f)\n",
              fmt_ci(mc.interval.mean(), mc.interval.ci_half_width()).c_str(),
              cmp.mean_interval_x);

  // 4. And run the real thing: three threads with checkpoints, messages
  //    and fault injection under the PRP scheme.
  RuntimeConfig cfg;
  cfg.num_processes = 3;
  cfg.scheme = SchemeKind::kPseudoRecoveryPoints;
  cfg.steps = 500;
  cfg.at_failure_probability = 0.05;
  RecoverySystem system(cfg);
  const RuntimeReport report = system.run();
  std::printf("runtime    : %zu RPs, %zu PRPs, %zu recoveries, "
              "restores verified: %s\n",
              report.rps, report.prps, report.recoveries,
              report.restore_verified ? "yes" : "NO");
  return 0;
}
