// Quickstart: analyze a set of cooperating processes under the three
// backward-error-recovery schemes of Shin & Lee (ICPP 1983).
//
//   $ ./quickstart
//
// Three processes, recovery points at rates (1.5, 1.0, 0.5), every pair
// interacting at rate 1.0 - Table 1 case 2 of the paper.  One Scenario is
// evaluated by all three registered backends (analytic, Monte-Carlo,
// thread runtime) through the common EvalBackend interface, then a small
// sweep grid varies rho (scaling flags work here too: --threads=N,
// --workers=N, --shard=i/k + --merge).
#include <cstdio>

#include "core/api.h"

int main(int argc, char** argv) {
  using namespace rbx;
  const ExperimentOptions opts =
      ExperimentOptions::parse(argc, argv, /*samples=*/4000, /*nmax=*/0);

  // 1. Describe the experiment once: rates (Section 2.1 assumptions),
  //    PRP recording time, Monte-Carlo budget, runtime workload, seed.
  RuntimeWorkload workload;
  workload.steps = 500;
  const Scenario scenario =
      Scenario(ProcessSetParams::three(/*mu=*/1.5, 1.0, 0.5,
                                       /*lambda12/23/13=*/1.0, 1.0, 1.0))
          .t_record(0.01)
          .samples(20000)
          .seed(2026)
          .at_failure_probability(0.05)
          .workload(workload);
  std::printf("process set: %s\n\n", scenario.params().describe().c_str());

  // 2. Closed-form / chain-based analysis of all three schemes: the same
  //    scenario with the scheme knob turned, on the analytic backend.
  const ResultSet async_exact = analytic_backend().evaluate(
      Scenario(scenario).scheme(SchemeKind::kAsynchronous));
  const ResultSet sync_exact = analytic_backend().evaluate(
      Scenario(scenario).scheme(SchemeKind::kSynchronized));
  const ResultSet prp_exact = analytic_backend().evaluate(
      Scenario(scenario).scheme(SchemeKind::kPseudoRecoveryPoints));

  std::printf("%s\n\n",
              scheme_summary(async_exact, sync_exact, prp_exact).c_str());

  // 3. Validate the asynchronous-scheme numbers by simulation: identical
  //    scenario, Monte-Carlo backend, same metric name.
  const ResultSet mc = monte_carlo_backend().evaluate(
      Scenario(scenario).scheme(SchemeKind::kAsynchronous));
  const Metric& mc_x = mc.metric("mean_interval_x");
  std::printf("monte-carlo: E[X] = %s (analytic %.4f)\n",
              fmt_ci(mc_x.value, mc_x.half_width).c_str(),
              async_exact.value("mean_interval_x"));

  // 4. And run the real thing: three threads with checkpoints, messages
  //    and fault injection under the PRP scheme.
  const ResultSet rt = runtime_backend().evaluate(
      Scenario(scenario).scheme(SchemeKind::kPseudoRecoveryPoints));
  std::printf("runtime    : %zu RPs, %zu PRPs, %zu recoveries, "
              "restores verified: %s\n\n",
              static_cast<std::size_t>(rt.value("rps")),
              static_cast<std::size_t>(rt.value("prps")),
              static_cast<std::size_t>(rt.value("recoveries")),
              rt.value("restore_verified") != 0.0 ? "yes" : "NO");

  // 5. Sweeps replace hand-written loops: E[X] vs rho on a homogeneous
  //    3-process system, analytic and Monte-Carlo side by side.  Cells
  //    run concurrently; seeds derive from the master seed and the cell
  //    index, so the numbers never depend on the thread count.
  const auto apply_rho = [](Scenario& s, double rho) {
    const double nd = static_cast<double>(s.n());
    s.params(ProcessSetParams::symmetric(s.n(), 1.0,
                                         2.0 * rho / (nd - 1.0)));
  };
  const auto cells =
      SweepGrid(Scenario::symmetric(3, 1.0, 1.0).samples(opts.samples))
          .axis({0.5, 1.0, 2.0}, apply_rho)
          .expand(/*master_seed=*/2026);
  SweepRunner runner(opts);
  const auto sweep = runner.run(cells, [](const Scenario& s, std::size_t) {
    ResultSet out = analytic_backend().evaluate(s);
    out.merge(monte_carlo_backend().evaluate(s), "mc_");
    return out;
  });
  if (!sweep) {
    return 0;  // --shard: partial written
  }
  const std::vector<ResultSet>& rows = *sweep;
  TextTable table({"rho", "E[X] analytic", "E[X] monte-carlo"});
  for (std::size_t k = 0; k < rows.size(); ++k) {
    // Read rho back out of the cell (rho = lambda (n-1) / 2 for mu = 1)
    // rather than repeating the axis values.
    const Scenario& cell = cells[k];
    const double rho = cell.params().lambda(0, 1) *
                       (static_cast<double>(cell.n()) - 1.0) / 2.0;
    const Metric& m = rows[k].metric("mc_mean_interval_x");
    table.add_row({TextTable::fmt(rho, 2),
                   TextTable::fmt(rows[k].value("mean_interval_x"), 4),
                   fmt_ci(m.value, m.half_width)});
  }
  std::printf("%s", table.render("SweepEngine: E[X] vs rho (n = 3)").c_str());
  return 0;
}
