// Markov-chain explorer: builds the paper's Section 2 chain for any
// process count and prints its structure, absorption statistics and the
// density of X - the machinery behind Figures 2, 3, 5 and 6, exposed as a
// small interactive tool.
//
// This example is INTENTIONALLY low-level.  Its subject is the model
// layer itself - per-state structure, per-process absorption
// probabilities, the pdf pointwise - not a named-metric summary, so it
// constructs AsyncRbModel/SymmetricAsyncModel directly rather than going
// through Scenario/EvalBackend.  A ResultSet flattens exactly the detail
// this tool exists to expose (the sweepable surface of the same chains is
// the "markov-structure" backend and the fig23_markov_structure bench).
//
//   $ ./markov_explorer [n=3] [mu=1.0] [lambda=1.0] [--dot]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/api.h"

int main(int argc, char** argv) {
  using namespace rbx;

  std::size_t n = 3;
  double mu = 1.0;
  double lambda = 1.0;
  bool dot = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0) {
      dot = true;
      continue;
    }
    switch (positional++) {
      case 0:
        n = static_cast<std::size_t>(std::strtoul(argv[i], nullptr, 10));
        break;
      case 1:
        mu = std::strtod(argv[i], nullptr);
        break;
      case 2:
        lambda = std::strtod(argv[i], nullptr);
        break;
      default:
        break;
    }
  }
  if (n < 1 || n > 10 || mu <= 0.0 || lambda < 0.0) {
    std::fprintf(stderr, "usage: %s [n=1..10] [mu>0] [lambda>=0] [--dot]\n",
                 argv[0]);
    return 1;
  }

  const auto params = ProcessSetParams::symmetric(n, mu, lambda);
  AsyncRbModel model(params);
  std::printf("Full chain (rules R1-R4) for %s\n", params.describe().c_str());
  std::printf("  states       : %zu (= 2^%zu + 1; entry S_r, intermediates, "
              "absorbing S_r+1)\n",
              model.num_states(), n);
  std::printf("  transitions  : %zu\n", model.transition_count());
  std::printf("  E[X]         : %.6f\n", model.mean_interval());
  std::printf("  sd[X]        : %.6f\n",
              std::sqrt(model.variance_interval()));
  std::printf("  f_X(0)       : %.6f (= sum mu, rule R4's impulse)\n",
              model.interval_pdf(0.0));
  for (std::size_t i = 0; i < n; ++i) {
    const auto counts = model.expected_rp_count(i);
    std::printf("  E[L_%zu]       : %.6f (P_i forms the line w.p. %.4f)\n",
                i + 1, counts.wald, model.absorbing_rp_probability(i));
  }

  SymmetricAsyncModel lumped(n, mu, lambda);
  std::printf("Lumped chain (rules R1'-R4'): %zu states, E[X] = %.6f "
              "(matches: %s)\n\n",
              lumped.num_states(), lumped.mean_interval(),
              relative_error(model.mean_interval(), lumped.mean_interval()) <
                      1e-9
                  ? "yes"
                  : "NO");

  std::printf("density of X (t, f(t)):\n");
  const double t_max = 3.0 * model.mean_interval();
  const auto grid = model.interval().pdf_grid(t_max, 13);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double t =
        t_max * static_cast<double>(i) / static_cast<double>(grid.size() - 1);
    std::printf("  %7.3f  %.6f\n", t, grid[i]);
  }

  if (dot) {
    const std::string out = ctmc_to_dot(
        model.chain(),
        [&model, n](std::size_t s) {
          if (s == model.entry_state()) {
            return std::string("S_r");
          }
          if (s == model.absorbing_state()) {
            return std::string("S_r+1");
          }
          const std::size_t mask = model.mask_of_state(s);
          std::string name;
          for (std::size_t i = 0; i < n; ++i) {
            name += (mask >> i) & 1 ? '1' : '0';
          }
          return name;
        },
        "async_rb_chain");
    std::printf("\n%s", out.c_str());
  }
  return 0;
}
