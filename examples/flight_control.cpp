// Flight-control scenario: the paper was funded by NASA Langley for
// fault-tolerant flight systems, and its conclusion singles out
// time-critical tasks where "a delay in system response beyond ... the
// system deadline leads to a catastrophic failure".
//
// Model: three redundant control channels (pitch/roll/yaw processing)
// cross-feeding sensor estimates every cycle.  Each channel checkpoints
// after its acceptance test; a transient fault (cosmic-ray upset) must be
// recovered *within a deadline*.  The example sizes the three schemes
// against a deadline using the paper's own quantities:
//
//   asynchronous : recovery needs up to the recovery-line age; its
//                  expected value is bounded below by E[X];
//   synchronized : recovery is bounded by the sync period + E[Z], but
//                  every period loses CL of computation;
//   pseudo RPs   : recovery is bounded by ~E[sup y_i] at the cost of n
//                  state savings per RP.
//
// The thread runtime then demonstrates PRP recovery end to end.
#include <cstdio>

#include "core/api.h"

int main() {
  using namespace rbx;

  // Channel acceptance tests run at 20 Hz-ish rates (time unit = 1 s);
  // cross-channel exchanges are a little faster.
  const double mu = 20.0;
  const double lambda = 30.0;
  const auto params = ProcessSetParams::symmetric(3, mu, lambda);
  const double deadline = 0.5;  // seconds of tolerable recovery gap

  std::printf("Triple-redundant control channels: %s\n\n",
              params.describe().c_str());

  // One scenario, evaluated per scheme through the analytic backend.
  const Scenario scenario = Scenario(params).t_record(1e-3);
  const ResultSet async_exact = analytic_backend().evaluate(
      Scenario(scenario).scheme(SchemeKind::kAsynchronous));

  std::printf("deadline: %.2f s of recomputation tolerated\n\n", deadline);
  const double line_age = async_exact.value("mean_line_age");
  std::printf("asynchronous RBs: E[X] = %.3f s between recovery lines; a "
              "random upset finds the last line %.3f s old on average "
              "(renewal age) -> %s\n",
              async_exact.value("mean_interval_x"), line_age,
              line_age > deadline
                  ? "UNSAFE (expected rollback exceeds the deadline)"
                  : "ok on average, but unbounded in the tail");

  // Synchronized: choose the longest period that keeps rollback age under
  // the deadline, then report the price.
  SyncRbModel sync(params.mu());
  const double period = deadline - sync.mean_max_wait();
  std::printf("synchronized RBs: period %.3f s + E[Z] %.3f s keeps rollback "
              "<= deadline; loss/sync CL = %.4f s (%.1f%% of each period)\n",
              period, sync.mean_max_wait(), sync.mean_loss(),
              100.0 * sync.mean_loss() / (3 * period));

  PrpModel prp(params, 1e-3);
  std::printf("pseudo RPs     : rollback bound E[sup y] = %.3f s (deadline "
              "ok: %s); cost %zu snapshots/RP, +%.4f s recording per RP\n\n",
              prp.mean_rollback_bound(),
              prp.mean_rollback_bound() <= deadline ? "yes" : "no",
              prp.snapshots_per_rp(), prp.time_overhead_per_rp());

  // Monte-Carlo: what rollback distances would transient upsets cause?
  PrpSimParams sp;
  sp.t_record = 1e-4;
  sp.error_rate = 0.5;  // upsets every ~2 s across the system
  PrpSimulator sim(params, sp, 42);
  const PrpSimResult mc = sim.run(2000);
  std::printf("simulated upsets: PRP rollback %.4f s mean / %.4f s p99; "
              "asynchronous %.4f s mean / %.4f s p99 (%zu dominoes)\n",
              mc.prp_distance.mean(), mc.prp_distance.quantile(0.99),
              mc.async_distance.mean(), mc.async_distance.quantile(0.99),
              mc.async_domino_count);

  // End-to-end on threads: channels exchange estimates, checkpoint, and a
  // 5% acceptance-test failure rate exercises recovery.
  RuntimeConfig cfg;
  cfg.num_processes = 3;
  cfg.scheme = SchemeKind::kPseudoRecoveryPoints;
  cfg.steps = 800;
  cfg.message_probability = 0.5;
  cfg.rp_probability = 0.1;
  cfg.at_failure_probability = 0.05;
  RecoverySystem system(cfg);
  const RuntimeReport r = system.run();
  std::printf("\nruntime: %zu recoveries over %zu RPs; snapshots bounded at "
              "%zu (purged %zu); all restores verified: %s\n",
              r.recoveries, r.rps, r.snapshots_retained, r.purged_snapshots,
              r.restore_verified && r.completed ? "yes" : "NO");
  std::printf("\nConclusion (paper Section 5): for deadline-driven tasks the "
              "asynchronous scheme is unacceptable; PRPs bound recovery "
              "without stalling normal execution.\n");
  return 0;
}
