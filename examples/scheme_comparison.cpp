// Scheme selection helper: given a process set, put numbers on the paper's
// Section 5 guidance ("To select a suitable strategy ... we have to first
// examine the properties of concurrent processes such as the amount of
// interprocess communications and the distribution of recovery points").
//
//   $ ./scheme_comparison [n] [mu] [lambda]
//
// Prints the analytic comparison, Monte-Carlo validation, and a thread
// runtime shakedown of each scheme - all driven by one Scenario flowing
// through the three EvalBackends, with the shakedown grid evaluated by
// SweepEngine.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/api.h"

int main(int argc, char** argv) {
  using namespace rbx;

  std::size_t n = 3;
  double mu = 1.0;
  double lambda = 1.0;
  if (argc > 1) {
    n = static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10));
  }
  if (argc > 2) {
    mu = std::strtod(argv[2], nullptr);
  }
  if (argc > 3) {
    lambda = std::strtod(argv[3], nullptr);
  }
  if (n < 2 || n > 10 || mu <= 0.0 || lambda < 0.0) {
    std::fprintf(stderr, "usage: %s [n=2..10] [mu>0] [lambda>=0]\n", argv[0]);
    return 1;
  }

  const Scenario scenario =
      Scenario::symmetric(n, mu, lambda).t_record(0.01);
  std::printf("Comparing schemes for %s\n\n",
              scenario.params().describe().c_str());

  const ResultSet async_exact = analytic_backend().evaluate(
      Scenario(scenario).scheme(SchemeKind::kAsynchronous));
  const ResultSet sync_exact = analytic_backend().evaluate(
      Scenario(scenario).scheme(SchemeKind::kSynchronized));
  const ResultSet prp_exact = analytic_backend().evaluate(
      Scenario(scenario).scheme(SchemeKind::kPseudoRecoveryPoints));

  std::printf("%s\n\n",
              scheme_summary(async_exact, sync_exact, prp_exact).c_str());

  TextTable table({"criterion", "asynchronous", "synchronized",
                   "pseudo RPs"});
  table.add_row(
      {"normal-operation cost", "none",
       "CL = " + TextTable::fmt(sync_exact.value("sync_mean_loss"), 3) +
           "/sync",
       TextTable::fmt(prp_exact.value("prp_time_overhead_per_rp"), 3) +
           " per RP + storage"});
  table.add_row(
      {"expected rollback scale",
       "E[X] = " + TextTable::fmt(async_exact.value("mean_interval_x"), 3),
       "<= sync period + E[Z]",
       "E[sup y] = " +
           TextTable::fmt(prp_exact.value("prp_mean_rollback_bound"), 3)});
  table.add_row({"states kept per process", "every RP (unbounded)",
                 "1 line (+1 in flight)",
                 TextTable::fmt_int(static_cast<long long>(prp_exact.value(
                     "prp_retained_snapshots_per_process")))});
  table.add_row({"process autonomy", "full", "none at commits", "full"});
  std::printf("%s\n", table.render("Trade-off summary").c_str());

  // Monte-Carlo check of the asynchronous column.
  const ResultSet mc = monte_carlo_backend().evaluate(
      Scenario(scenario).scheme(SchemeKind::kAsynchronous).seed(11).samples(
          20000));
  const Metric& mc_x = mc.metric("mean_interval_x");
  std::printf("asynchronous E[X] monte-carlo: %s\n\n",
              fmt_ci(mc_x.value, mc_x.half_width).c_str());

  // Thread-runtime shakedown of each scheme on this process count: a
  // one-axis SweepEngine grid over the scheme knob.
  const Scenario shakedown =
      Scenario(scenario).seed(1).at_failure_probability(0.05);
  const std::vector<SchemeKind> schemes = {
      SchemeKind::kAsynchronous, SchemeKind::kSynchronized,
      SchemeKind::kPseudoRecoveryPoints};
  std::vector<Scenario> cells;
  for (SchemeKind scheme : schemes) {
    cells.push_back(Scenario(shakedown).scheme(scheme));
  }
  // One worker: each runtime cell already spawns n process threads.
  const std::vector<ResultSet> reports =
      SweepEngine({1}).run(cells, runtime_backend());
  for (std::size_t k = 0; k < reports.size(); ++k) {
    const ResultSet& r = reports[k];
    const char* name = schemes[k] == SchemeKind::kAsynchronous
                           ? "asynchronous"
                       : schemes[k] == SchemeKind::kSynchronized
                           ? "synchronized"
                           : "pseudo RPs  ";
    std::printf("runtime %s: %4zu RPs %4zu PRPs %3zu recoveries "
                "%5zu snapshot bytes  verified=%s\n",
                name, static_cast<std::size_t>(r.value("rps")),
                static_cast<std::size_t>(r.value("prps")),
                static_cast<std::size_t>(r.value("recoveries")),
                static_cast<std::size_t>(r.value("snapshot_bytes")),
                r.value("completed") != 0.0 &&
                        r.value("restore_verified") != 0.0
                    ? "yes"
                    : "NO");
  }
  return 0;
}
