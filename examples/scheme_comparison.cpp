// Scheme selection helper: given a process set, put numbers on the paper's
// Section 5 guidance ("To select a suitable strategy ... we have to first
// examine the properties of concurrent processes such as the amount of
// interprocess communications and the distribution of recovery points").
//
//   $ ./scheme_comparison [n] [mu] [lambda]
//
// Prints the analytic comparison, Monte-Carlo validation, and a thread
// runtime shakedown for each scheme.
#include <cstdio>
#include <cstdlib>

#include "core/api.h"

int main(int argc, char** argv) {
  using namespace rbx;

  std::size_t n = 3;
  double mu = 1.0;
  double lambda = 1.0;
  if (argc > 1) {
    n = static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10));
  }
  if (argc > 2) {
    mu = std::strtod(argv[2], nullptr);
  }
  if (argc > 3) {
    lambda = std::strtod(argv[3], nullptr);
  }
  if (n < 2 || n > 10 || mu <= 0.0 || lambda < 0.0) {
    std::fprintf(stderr, "usage: %s [n=2..10] [mu>0] [lambda>=0]\n", argv[0]);
    return 1;
  }

  const auto params = ProcessSetParams::symmetric(n, mu, lambda);
  std::printf("Comparing schemes for %s\n\n", params.describe().c_str());

  Analyzer analyzer(params, /*t_record=*/0.01);
  const SchemeComparison cmp = analyzer.compare();
  std::printf("%s\n\n", cmp.summary().c_str());

  TextTable table({"criterion", "asynchronous", "synchronized",
                   "pseudo RPs"});
  SyncRbModel sync(params.mu());
  PrpModel prp(params, 0.01);
  table.add_row({"normal-operation cost", "none",
                 "CL = " + TextTable::fmt(sync.mean_loss(), 3) + "/sync",
                 TextTable::fmt(prp.time_overhead_per_rp(), 3) +
                     " per RP + storage"});
  table.add_row({"expected rollback scale",
                 "E[X] = " + TextTable::fmt(cmp.mean_interval_x, 3),
                 "<= sync period + E[Z]",
                 "E[sup y] = " +
                     TextTable::fmt(prp.mean_rollback_bound(), 3)});
  table.add_row({"states kept per process", "every RP (unbounded)",
                 "1 line (+1 in flight)",
                 TextTable::fmt_int(
                     static_cast<long long>(prp.retained_snapshots_per_process()))});
  table.add_row({"process autonomy", "full", "none at commits", "full"});
  std::printf("%s\n", table.render("Trade-off summary").c_str());

  // Monte-Carlo check of the asynchronous column.
  AsyncRbSimulator async_sim(params, 11);
  const AsyncSimResult mc = async_sim.run_lines(20000);
  std::printf("asynchronous E[X] monte-carlo: %s\n\n",
              fmt_ci(mc.interval.mean(), mc.interval.ci_half_width()).c_str());

  // Thread-runtime shakedown of each scheme on this process count.
  for (SchemeKind scheme :
       {SchemeKind::kAsynchronous, SchemeKind::kSynchronized,
        SchemeKind::kPseudoRecoveryPoints}) {
    RuntimeConfig cfg;
    cfg.num_processes = n;
    cfg.scheme = scheme;
    cfg.steps = 400;
    cfg.at_failure_probability = 0.05;
    RecoverySystem system(cfg);
    const RuntimeReport r = system.run();
    const char* name = scheme == SchemeKind::kAsynchronous ? "asynchronous"
                       : scheme == SchemeKind::kSynchronized
                           ? "synchronized"
                           : "pseudo RPs  ";
    std::printf("runtime %s: %4zu RPs %4zu PRPs %3zu recoveries "
                "%5zu snapshot bytes  verified=%s\n",
                name, r.rps, r.prps, r.recoveries, r.snapshot_bytes,
                r.completed && r.restore_verified ? "yes" : "NO");
  }
  return 0;
}
